// Package eoimage generates synthetic Earth-observation imagery with
// realistic statistics: spatially correlated land and ocean textures,
// cloud layers, night scenes with sparse lights, built-up areas with
// man-made structure, hyperspectral cubes with inter-band correlation, and
// speckled SAR scenes with large quiet backgrounds.
//
// It substitutes for the paper's CrowdAI Mapping Challenge (RGB) and xView3
// (SAR) datasets: compression ratio is a function of image statistics, so a
// generator tuned to the same statistical regime reproduces the paper's
// Table 4 codec ordering, and the discard package's classifiers exercise
// the same decision logic early-discard would run on real frames.
package eoimage

import (
	"fmt"
	"image"
	"image/color"
	"math"
	"math/rand"
)

// SceneKind selects the dominant land cover of a generated scene.
type SceneKind int

// Scene kinds.
const (
	Ocean SceneKind = iota
	Rural
	Urban
)

// String names the scene kind.
func (k SceneKind) String() string {
	switch k {
	case Ocean:
		return "ocean"
	case Rural:
		return "rural"
	case Urban:
		return "urban"
	default:
		return "unknown"
	}
}

// Config describes a synthetic RGB scene.
type Config struct {
	Width, Height int
	Seed          int64
	Kind          SceneKind
	// CloudFraction in [0, 1] covers that share of the scene with cloud.
	CloudFraction float64
	// Night renders the scene unlit except for sparse artificial lights
	// (only meaningful for Rural/Urban).
	Night bool
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("eoimage: non-positive dimensions %dx%d", c.Width, c.Height)
	}
	if c.CloudFraction < 0 || c.CloudFraction > 1 {
		return fmt.Errorf("eoimage: cloud fraction %v outside [0,1]", c.CloudFraction)
	}
	if c.Kind != Ocean && c.Kind != Rural && c.Kind != Urban {
		return fmt.Errorf("eoimage: unknown scene kind %d", c.Kind)
	}
	return nil
}

// Scene is a generated RGB frame with per-pixel ground-truth masks.
type Scene struct {
	Width, Height int
	R, G, B       []uint8 // planar bands, row-major
	Cloud         []bool  // true where cloud covers the pixel
	Water         []bool  // true where the underlying surface is water
	BuiltUp       []bool  // true where man-made structure exists
	Night         bool
}

// Pixels returns Width × Height.
func (s *Scene) Pixels() int { return s.Width * s.Height }

// Image renders the scene as an image.Image for the stdlib codecs.
func (s *Scene) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, s.Width, s.Height))
	for i := 0; i < s.Pixels(); i++ {
		img.SetRGBA(i%s.Width, i/s.Width, color.RGBA{R: s.R[i], G: s.G[i], B: s.B[i], A: 255})
	}
	return img
}

// Interleaved returns the pixel data as RGBRGB… bytes, the layout the
// non-image codecs compress.
func (s *Scene) Interleaved() []byte {
	out := make([]byte, 0, 3*s.Pixels())
	for i := 0; i < s.Pixels(); i++ {
		out = append(out, s.R[i], s.G[i], s.B[i])
	}
	return out
}

// CloudFraction returns the fraction of pixels under cloud.
func (s *Scene) CloudFraction() float64 {
	n := 0
	for _, c := range s.Cloud {
		if c {
			n++
		}
	}
	return float64(n) / float64(s.Pixels())
}

// WaterFraction returns the fraction of water pixels.
func (s *Scene) WaterFraction() float64 {
	n := 0
	for _, w := range s.Water {
		if w {
			n++
		}
	}
	return float64(n) / float64(s.Pixels())
}

// BuiltUpFraction returns the fraction of built-up pixels.
func (s *Scene) BuiltUpFraction() float64 {
	n := 0
	for _, b := range s.BuiltUp {
		if b {
			n++
		}
	}
	return float64(n) / float64(s.Pixels())
}

// Generate builds a synthetic RGB scene.
func Generate(cfg Config) (*Scene, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h := cfg.Width, cfg.Height
	n := w * h

	s := &Scene{
		Width: w, Height: h,
		R: make([]uint8, n), G: make([]uint8, n), B: make([]uint8, n),
		Cloud: make([]bool, n), Water: make([]bool, n), BuiltUp: make([]bool, n),
		Night: cfg.Night,
	}

	texture := smoothField(rng, w, h, 3, 6) // base land/sea texture
	detail := smoothField(rng, w, h, 1, 2)  // high-frequency detail

	switch cfg.Kind {
	case Ocean:
		for i := 0; i < n; i++ {
			s.Water[i] = true
			// Deep blue with gentle swell structure.
			v := 0.15 + 0.08*texture[i] + 0.02*detail[i]
			s.R[i] = quant(0.15 * v * 4)
			s.G[i] = quant(0.35 * (v + 0.1) * 2)
			s.B[i] = quant(v + 0.35)
		}
	case Rural:
		for i := 0; i < n; i++ {
			// Vegetation and soil mix driven by the texture field.
			veg := texture[i]
			soil := 1 - veg
			s.R[i] = quant(0.25*veg + 0.45*soil + 0.12*detail[i])
			s.G[i] = quant(0.45*veg + 0.35*soil + 0.12*detail[i])
			s.B[i] = quant(0.15*veg + 0.25*soil + 0.08*detail[i])
			if texture[i] < 0.18 { // occasional lakes and rivers
				s.Water[i] = true
				s.R[i], s.G[i], s.B[i] = quant(0.1), quant(0.2), quant(0.45)
			}
		}
	case Urban:
		for i := 0; i < n; i++ {
			// Concrete gray base.
			base := 0.45 + 0.2*texture[i] + 0.1*detail[i]
			s.R[i] = quant(base)
			s.G[i] = quant(base * 0.98)
			s.B[i] = quant(base * 0.95)
		}
		addBuildings(rng, s)
		addRoads(s)
	}

	if cfg.Night {
		applyNight(rng, s)
	}
	if cfg.CloudFraction > 0 {
		applyClouds(rng, s, cfg.CloudFraction)
	}
	return s, nil
}

// quant clamps a [0,1] intensity to a byte.
func quant(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v * 255)
}

// smoothField returns a spatially correlated random field in [0,1] built by
// box-blurring white noise `passes` times with the given radius.
func smoothField(rng *rand.Rand, w, h, passes, radius int) []float64 {
	f := make([]float64, w*h)
	for i := range f {
		f[i] = rng.Float64()
	}
	tmp := make([]float64, w*h)
	for p := 0; p < passes; p++ {
		boxBlurH(f, tmp, w, h, radius)
		boxBlurV(tmp, f, w, h, radius)
	}
	// Renormalize to [0,1]: blurring compresses the range.
	min, max := f[0], f[0]
	for _, v := range f {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	for i := range f {
		f[i] = (f[i] - min) / span
	}
	return f
}

// boxBlurH runs a horizontal box blur from src into dst.
func boxBlurH(src, dst []float64, w, h, radius int) {
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		out := dst[y*w : (y+1)*w]
		var sum float64
		count := 0
		for x := -radius; x <= radius; x++ {
			if x >= 0 && x < w {
				sum += row[x]
				count++
			}
		}
		for x := 0; x < w; x++ {
			out[x] = sum / float64(count)
			if left := x - radius; left >= 0 {
				sum -= row[left]
				count--
			}
			if right := x + radius + 1; right < w {
				sum += row[right]
				count++
			}
		}
	}
}

// boxBlurV runs a vertical box blur from src into dst.
func boxBlurV(src, dst []float64, w, h, radius int) {
	for x := 0; x < w; x++ {
		var sum float64
		count := 0
		for y := -radius; y <= radius; y++ {
			if y >= 0 && y < h {
				sum += src[y*w+x]
				count++
			}
		}
		for y := 0; y < h; y++ {
			dst[y*w+x] = sum / float64(count)
			if top := y - radius; top >= 0 {
				sum -= src[top*w+x]
				count--
			}
			if bottom := y + radius + 1; bottom < h {
				sum += src[bottom*w+x]
				count++
			}
		}
	}
}

// addBuildings stamps axis-aligned rectangles with distinct rooftop tones
// and marks them built-up.
func addBuildings(rng *rand.Rand, s *Scene) {
	w, h := s.Width, s.Height
	count := w * h / 900 // building density
	for b := 0; b < count; b++ {
		bw := 4 + rng.Intn(12)
		bh := 4 + rng.Intn(12)
		x0 := rng.Intn(max(1, w-bw))
		y0 := rng.Intn(max(1, h-bh))
		tone := 0.3 + 0.6*rng.Float64()
		for y := y0; y < y0+bh && y < h; y++ {
			for x := x0; x < x0+bw && x < w; x++ {
				i := y*w + x
				s.R[i] = quant(tone)
				s.G[i] = quant(tone * 0.97)
				s.B[i] = quant(tone * 0.93)
				s.BuiltUp[i] = true
			}
		}
	}
}

// addRoads draws a dark street grid and marks it built-up.
func addRoads(s *Scene) {
	w, h := s.Width, s.Height
	const pitch = 32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x%pitch < 2 || y%pitch < 2 {
				i := y*w + x
				s.R[i], s.G[i], s.B[i] = 40, 40, 42
				s.BuiltUp[i] = true
			}
		}
	}
}

// applyNight darkens the scene, leaving sparse artificial lights over
// built-up pixels.
func applyNight(rng *rand.Rand, s *Scene) {
	for i := 0; i < s.Pixels(); i++ {
		s.R[i] = s.R[i] / 12
		s.G[i] = s.G[i] / 12
		s.B[i] = s.B[i] / 14
		if s.BuiltUp[i] && rng.Float64() < 0.08 {
			// Sodium-vapor glow.
			s.R[i], s.G[i], s.B[i] = 250, 220, 140
		}
	}
}

// applyClouds overlays bright cloud where a smooth field exceeds the
// threshold that yields the requested coverage.
func applyClouds(rng *rand.Rand, s *Scene, fraction float64) {
	field := smoothField(rng, s.Width, s.Height, 3, 10)
	threshold := quantileThreshold(field, 1-fraction)
	for i, v := range field {
		if v >= threshold {
			// Cloud brightness varies with field height above threshold.
			bright := 0.75 + 0.25*math.Min(1, (v-threshold)*8)
			s.Cloud[i] = true
			s.R[i] = blend(s.R[i], bright)
			s.G[i] = blend(s.G[i], bright)
			s.B[i] = blend(s.B[i], bright)
		}
	}
}

// blend mixes a pixel toward white cloud of the given brightness.
func blend(p uint8, bright float64) uint8 {
	return quant(0.15*float64(p)/255 + 0.85*bright)
}

// quantileThreshold returns the value below which fraction q of the samples
// fall (approximately, via histogram).
func quantileThreshold(f []float64, q float64) float64 {
	const bins = 1024
	var hist [bins]int
	for _, v := range f {
		b := int(v * (bins - 1))
		hist[b]++
	}
	target := int(q * float64(len(f)))
	cum := 0
	for b := 0; b < bins; b++ {
		cum += hist[b]
		if cum >= target {
			return float64(b) / (bins - 1)
		}
	}
	return 1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
