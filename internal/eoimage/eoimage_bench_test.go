package eoimage

import "testing"

func BenchmarkGenerateRGB(b *testing.B) {
	cfg := Config{Width: 512, Height: 512, Kind: Urban, CloudFraction: 0.3}
	b.SetBytes(int64(3 * cfg.Width * cfg.Height))
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSAR(b *testing.B) {
	cfg := SARConfig{Width: 512, Height: 512, ShipCount: 8, NoDataBorder: 64}
	b.SetBytes(int64(2 * cfg.Width * cfg.Height))
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := GenerateSAR(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateHyperspectral(b *testing.B) {
	cfg := HyperspectralConfig{Width: 128, Height: 128, Bands: 64, BandCorrelation: 0.95}
	b.SetBytes(int64(2 * cfg.Width * cfg.Height * cfg.Bands))
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := GenerateHyperspectral(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
