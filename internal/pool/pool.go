// Package pool is the shared deterministic worker pool underneath every
// fan-out in the repo: the experiment sweep (experiments.RunAllObsWorkers),
// the netsim scenario sweep (netsim.SweepObs), and the experiment drivers
// that decompose their internal grids into sub-jobs (ext-netsim, ext-lossy,
// table4). One global token budget bounds concurrency across all of them,
// so a sweep nested inside a pooled experiment adds parallelism only while
// spare cores exist — never CPU oversubscription.
//
// The pool is nesting-aware by construction: the goroutine that calls Map
// always executes jobs inline, and extra workers are goroutines gated by a
// non-blocking token acquire. A job that itself calls Map therefore makes
// progress on its own sub-jobs regardless of the token budget — pool-in-pool
// cannot deadlock even at a budget of zero, where every Map simply runs
// serially on its caller.
//
// Determinism contract: jobs are claimed in ID order, each job writes only
// state owned by its ID, and Map reports the lowest-ID error. The result of
// a Map is therefore independent of the token budget, the worker count, and
// the scheduling interleaving — a serial run is bit-identical to a parallel
// one, which the determinism suites in experiments and netsim lock down.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spacedc/internal/obs"
)

// Pool bounds helper-goroutine concurrency with a token budget. The zero
// Pool is unusable — build one with New, or use the process-wide Shared
// pool.
type Pool struct {
	tokens chan struct{}
}

// New builds a pool whose token budget caps the helper goroutines alive
// across every concurrent Map on it. The calling goroutine of each Map runs
// jobs inline without holding a token, so total job concurrency is (active
// Map callers) + budget. budget < 0 means one helper per CPU beyond the
// caller (NumCPU-1); budget 0 makes every Map serial.
func New(budget int) *Pool {
	if budget < 0 {
		budget = runtime.NumCPU() - 1
	}
	p := &Pool{tokens: make(chan struct{}, budget)}
	for i := 0; i < budget; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// shared is the process-wide pool: one caller plus NumCPU-1 helpers keeps
// the machine fully used without oversubscription, no matter how deeply
// sweeps nest inside experiments.
var shared = New(-1)

// Shared returns the process-wide pool every production fan-out schedules
// into.
func Shared() *Pool {
	return shared
}

// Map runs fn over job IDs 0..n-1 and returns the lowest-ID error (nil when
// every job succeeded). See MapObs for the scheduling contract.
func (p *Pool) Map(n, slots int, fn func(id int) error) error {
	return p.MapObs(n, slots, nil, "", fn)
}

// MapObs is Map with per-worker observability: each execution slot records
// its wall-clock job timings into "<prefix>.workerNN.run_secs" and its
// completed-job count into "<prefix>.workerNN.runs", exposing pool
// imbalance exactly like the pre-pool sweep runners did. A nil registry
// makes MapObs identical to Map.
//
// slots caps this Map's concurrency: slot 0 is the calling goroutine, which
// always participates, and slots 1..slots-1 are helper goroutines spawned
// only while the pool has spare tokens (re-checked as tokens free up, so a
// sweep that starts while the machine is busy still ramps up later). slots
// ≤ 0 means one slot per CPU; slots = 1 runs serially on the caller without
// touching the token budget. Jobs are claimed in increasing ID order; a
// job's effects must be confined to state its ID owns, which makes the
// result independent of slots, budget, and scheduling.
func (p *Pool) MapObs(n, slots int, reg *obs.Registry, prefix string, fn func(id int) error) error {
	if n <= 0 {
		return nil
	}
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	if slots > n {
		slots = n
	}
	errs := make([]error, n)
	var next atomic.Int64

	// run drains jobs as execution slot `slot` until none remain.
	run := func(slot int) {
		var (
			hRun    *obs.Histogram
			ctrRuns *obs.Counter
		)
		if reg != nil {
			hRun = reg.Histogram(fmt.Sprintf("%s.worker%02d.run_secs", prefix, slot), obs.TimeBuckets)
			ctrRuns = reg.Counter(fmt.Sprintf("%s.worker%02d.runs", prefix, slot))
		}
		for {
			id := int(next.Add(1)) - 1
			if id >= n {
				return
			}
			var t0 time.Time
			if reg != nil {
				t0 = time.Now()
			}
			errs[id] = fn(id)
			if reg != nil {
				hRun.Observe(time.Since(t0).Seconds())
				ctrRuns.Inc()
			}
		}
	}

	if slots > 1 {
		// The spawner blocks on the token budget so helpers keep arriving
		// as other Maps release tokens; it never blocks the caller, which
		// is already working inline. stop cancels it the moment the caller
		// runs out of jobs to claim.
		stop := make(chan struct{})
		var helpers, spawner sync.WaitGroup
		spawner.Add(1)
		go func() {
			defer spawner.Done()
			for slot := 1; slot < slots; slot++ {
				select {
				case tok := <-p.tokens:
					if next.Load() >= int64(n) {
						p.tokens <- tok
						return
					}
					helpers.Add(1)
					go func(slot int) {
						defer helpers.Done()
						defer func() { p.tokens <- tok }()
						run(slot)
					}(slot)
				case <-stop:
					return
				}
			}
		}()
		run(0)
		close(stop)
		spawner.Wait()
		helpers.Wait()
	} else {
		run(0)
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over job IDs 0..n-1 on the shared pool.
func Map(n, slots int, fn func(id int) error) error {
	return shared.MapObs(n, slots, nil, "", fn)
}

// MapObs runs fn over job IDs 0..n-1 on the shared pool with per-worker
// observability.
func MapObs(n, slots int, reg *obs.Registry, prefix string, fn func(id int) error) error {
	return shared.MapObs(n, slots, reg, prefix, fn)
}
