package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spacedc/internal/obs"
)

// collect runs an n-job Map on p that writes id*id into its own slot and
// returns the slots, the shape every pool caller relies on.
func collect(t *testing.T, p *Pool, n, slots int) []int {
	t.Helper()
	out := make([]int, n)
	err := p.Map(n, slots, func(id int) error {
		out[id] = id * id
		return nil
	})
	if err != nil {
		t.Fatalf("Map(n=%d, slots=%d): %v", n, slots, err)
	}
	return out
}

// TestMapReassemblesInIDOrder asserts every (budget, slots) combination
// yields the same ID-ordered results as a serial run — the pool must be
// invisible in the output.
func TestMapReassemblesInIDOrder(t *testing.T) {
	const n = 100
	want := collect(t, New(0), n, 1) // serial reference
	for _, budget := range []int{0, 1, 2, 8} {
		for _, slots := range []int{1, 2, 7, n, 2 * n, -1, 0} {
			got := collect(t, New(budget), n, slots)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("budget=%d slots=%d: slot %d = %d, want %d", budget, slots, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMapZeroAndNegativeJobs pins the degenerate inputs: no jobs is a
// successful no-op regardless of slots.
func TestMapZeroAndNegativeJobs(t *testing.T) {
	p := New(4)
	calls := 0
	for _, n := range []int{0, -3} {
		if err := p.Map(n, 8, func(int) error { calls++; return nil }); err != nil {
			t.Fatalf("Map(n=%d): %v", n, err)
		}
	}
	if calls != 0 {
		t.Errorf("degenerate Map ran %d jobs, want 0", calls)
	}
}

// TestMapFirstErrorInIDOrder asserts the error Map surfaces is the failing
// job that comes first in ID order — independent of slots and budget, even
// though a later-ID failure may well have been observed first by the
// scheduler.
func TestMapFirstErrorInIDOrder(t *testing.T) {
	errAt := map[int]error{3: errors.New("job 3"), 7: errors.New("job 7"), 12: errors.New("job 12")}
	for _, slots := range []int{1, 4, 16} {
		err := New(8).Map(16, slots, func(id int) error {
			return errAt[id]
		})
		if err == nil || err.Error() != "job 3" {
			t.Errorf("slots=%d: Map error = %v, want the ID-order-first failure (job 3)", slots, err)
		}
	}
}

// TestMapRunsEveryJobDespiteErrors asserts a failure does not starve later
// jobs: the pool completes the whole grid and only then reports.
func TestMapRunsEveryJobDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	err := New(2).Map(20, 4, func(id int) error {
		ran.Add(1)
		if id == 0 {
			return errors.New("first job fails")
		}
		return nil
	})
	if err == nil {
		t.Fatal("failure did not surface")
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("pool ran %d of 20 jobs after an early failure", got)
	}
}

// TestNestedMapBudgetOneNoDeadlock is the pool-in-pool determinism suite:
// under a token budget of 1 every nested Map must still complete (the
// caller always works inline, so submission can never self-block), and the
// nested results must reassemble in ID order exactly as a fully serial
// run would produce them.
func TestNestedMapBudgetOneNoDeadlock(t *testing.T) {
	for _, budget := range []int{0, 1} {
		p := New(budget)
		const outer, inner = 6, 8
		got := make([][]int, outer)
		done := make(chan error, 1)
		go func() {
			done <- p.Map(outer, 4, func(o int) error {
				row := make([]int, inner)
				if err := p.Map(inner, 4, func(i int) error {
					row[i] = o*inner + i
					return nil
				}); err != nil {
					return err
				}
				got[o] = row
				return nil
			})
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("budget=%d: nested Map: %v", budget, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("budget=%d: nested Map deadlocked", budget)
		}
		for o := 0; o < outer; o++ {
			for i := 0; i < inner; i++ {
				if got[o][i] != o*inner+i {
					t.Fatalf("budget=%d: nested slot [%d][%d] = %d, want %d", budget, o, i, got[o][i], o*inner+i)
				}
			}
		}
	}
}

// TestNestedMapErrorOrder asserts a nested failure propagates through the
// outer Map as the outer-ID-order-first error.
func TestNestedMapErrorOrder(t *testing.T) {
	p := New(2)
	err := p.Map(5, 3, func(o int) error {
		return p.Map(4, 2, func(i int) error {
			if o >= 2 && i == 3 {
				return fmt.Errorf("outer %d inner %d", o, i)
			}
			return nil
		})
	})
	if err == nil || err.Error() != "outer 2 inner 3" {
		t.Errorf("nested error = %v, want outer-ID-order-first (outer 2 inner 3)", err)
	}
}

// TestMapObsWorkerAccounting asserts the per-slot metrics cover every job
// exactly once and live under the caller's prefix, and that slot 0 (the
// inline caller) always exists.
func TestMapObsWorkerAccounting(t *testing.T) {
	reg := obs.New(obs.WithWallClock())
	const n = 12
	if err := New(8).MapObs(n, 4, reg, "pool.test", func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var runs int64
	saw0 := false
	for _, c := range reg.Snapshot().Counters {
		if len(c.Name) > 9 && c.Name[:9] == "pool.test" {
			runs += c.Value
			if c.Name == "pool.test.worker00.runs" {
				saw0 = true
			}
		}
	}
	if runs != n {
		t.Errorf("per-worker run counters total %d, want %d", runs, n)
	}
	if !saw0 {
		t.Error("slot 0 (the inline caller) recorded no metrics")
	}
}

// TestSharedPoolConcurrentMaps races two Maps on the shared pool — the
// production shape when pooled experiments nest sweeps — and checks both
// complete with correct results (run under -race in CI).
func TestSharedPoolConcurrentMaps(t *testing.T) {
	const n = 64
	a := make([]int, n)
	b := make([]int, n)
	done := make(chan error, 2)
	go func() {
		done <- Map(n, 0, func(id int) error { a[id] = id; return nil })
	}()
	go func() {
		done <- MapObs(n, runtime.NumCPU(), nil, "", func(id int) error { b[id] = -id; return nil })
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if a[i] != i || b[i] != -i {
			t.Fatalf("concurrent shared-pool maps corrupted slot %d: %d, %d", i, a[i], b[i])
		}
	}
}
