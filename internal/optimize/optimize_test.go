package optimize

import (
	"context"
	"sort"
	"strings"
	"testing"

	"spacedc/internal/econ"
)

// testSpace is the small fixed design space the determinism and
// differential suites search: 216 combinations.
func testSpace() Space {
	return Space{
		Planes:       []int{1, 2},
		SatsPerPlane: []int{8, 12, 16},
		AltitudesKm:  []float64{550, 800},
		Topologies:   []TopoChoice{{K: 2, Split: 1}, {K: 4, Split: 2}, {GEOSinks: 3}},
		Devices:      []int{1, 2},
		Recoveries:   []string{econ.RecoveryNone, econ.RecoveryRetry, econ.RecoveryTMR},
	}
}

// testEval shortens the evaluation sims so the full search suite stays
// inside a few seconds.
func testEval() EvalConfig {
	return EvalConfig{
		NetDurationSec:     10,
		NetStepSec:         0.5,
		NetEpochSec:        5,
		ComputeDurationSec: 600,
	}
}

// renderAll flattens an outcome to the byte artifact CI compares.
func renderAll(t *testing.T, out *Outcome) string {
	t.Helper()
	var b strings.Builder
	for _, tb := range Tables(out) {
		if err := tb.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestOptimizeBitIdentity runs the full search serially and with an
// 8-wide fan-out and requires byte-identical traces and final tables —
// the worker count must never leak into proposals, acceptance, or
// rendering. CI runs this under -race with -count=2.
func TestOptimizeBitIdentity(t *testing.T) {
	base := Config{Seed: 42, Budget: 24, Restarts: 3, Anneal: true, Eval: testEval()}
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.Workers = workers
		out, err := Search(context.Background(), cfg, testSpace())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out.Proposals != base.Budget {
			t.Fatalf("workers=%d: %d proposals, want the full %d budget", workers, out.Proposals, base.Budget)
		}
		outputs = append(outputs, renderAll(t, out))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("search output differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestRandomAndExhaustiveBitIdentity extends the worker-independence
// contract to the two reference searchers.
func TestRandomAndExhaustiveBitIdentity(t *testing.T) {
	sub := testSpace()
	sub.SatsPerPlane = []int{8, 16}
	sub.AltitudesKm = []float64{550}
	sub.Devices = []int{1}
	for name, run := range map[string]func(Config) (*Outcome, error){
		"random": func(cfg Config) (*Outcome, error) {
			return RandomSearch(context.Background(), cfg, sub)
		},
		"exhaustive": func(cfg Config) (*Outcome, error) {
			return Exhaustive(context.Background(), cfg, sub)
		},
	} {
		cfg := Config{Seed: 7, Budget: 12, Eval: testEval()}
		cfg.Workers = 1
		a, err := run(cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		cfg.Workers = 8
		b, err := run(cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if renderAll(t, a) != renderAll(t, b) {
			t.Fatalf("%s output differs between worker counts", name)
		}
	}
}

// TestHeuristicBeatsRandomSweep is the equal-budget differential: on the
// fixed test space the heuristic must (a) reach the exhaustive optimum of
// a seeded product subspace, and (b) beat the median best of five
// pure-random sweeps with the same proposal budget — the guard against
// the search degenerating into random sampling.
func TestHeuristicBeatsRandomSweep(t *testing.T) {
	space := testSpace()
	const budget = 48

	heur, err := Search(context.Background(), Config{Seed: 42, Budget: budget, Restarts: 4, Anneal: true, Eval: testEval()}, space)
	if err != nil {
		t.Fatal(err)
	}

	// Seeded product subspace: half of each of the two largest axes.
	sub := space
	sub.SatsPerPlane = []int{8, 16}
	sub.AltitudesKm = []float64{550}
	sub.Devices = []int{1, 2}
	sub.Recoveries = []string{econ.RecoveryNone, econ.RecoveryRetry}
	ex, err := Exhaustive(context.Background(), Config{Eval: testEval()}, sub)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Best.Score.Objective < ex.Best.Score.Objective {
		t.Errorf("heuristic best %.6f below exhaustive subspace best %.6f (%s)",
			heur.Best.Score.Objective, ex.Best.Score.Objective, Key(ex.Best.Design))
	}

	var randBests []float64
	for seed := int64(1); seed <= 5; seed++ {
		r, err := RandomSearch(context.Background(), Config{Seed: seed, Budget: budget, Eval: testEval()}, space)
		if err != nil {
			t.Fatal(err)
		}
		randBests = append(randBests, r.Best.Score.Objective)
	}
	sort.Float64s(randBests)
	median := randBests[len(randBests)/2]
	if !(heur.Best.Score.Objective > median) {
		t.Errorf("heuristic best %.6f not above random-sweep median %.6f (bests %v)",
			heur.Best.Score.Objective, median, randBests)
	}
	t.Logf("heuristic %.6f | exhaustive-sub %.6f | random median %.6f",
		heur.Best.Score.Objective, ex.Best.Score.Objective, median)
}

// TestSearchRejectsDegenerateSpace asserts a space with no valid designs
// errors instead of looping or scoring nonsense.
func TestSearchRejectsDegenerateSpace(t *testing.T) {
	bad := testSpace()
	bad.SatsPerPlane = []int{1}                     // can't populate any cluster fabric
	bad.Topologies = []TopoChoice{{K: 4, Split: 2}} // and no GEO escape hatch
	if _, err := Search(context.Background(), Config{Budget: 8, Eval: testEval()}, bad); err == nil {
		t.Fatal("degenerate space searched without error")
	}
	empty := testSpace()
	empty.Recoveries = nil
	if _, err := Search(context.Background(), Config{Budget: 8, Eval: testEval()}, empty); err == nil {
		t.Fatal("empty-axis space accepted")
	}
}

// TestSearchHonorsContext asserts a cancelled context aborts the search
// with the context's error.
func TestSearchHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, Config{Budget: 8, Eval: testEval()}, testSpace()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestScoresFinite asserts every trace entry of a search is JSON-safe:
// finite scores, infeasible candidates scored zero with a reason.
func TestScoresFinite(t *testing.T) {
	out, err := Search(context.Background(), Config{Seed: 9, Budget: 16, Eval: testEval()}, testSpace())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Trace {
		s := c.Score
		for _, v := range []float64{s.NetworkMbps, s.ComputeRatio, s.GoodputMbps, s.CostPerHour, s.Objective} {
			if v != v || v > 1e308 || v < -1e308 {
				t.Fatalf("non-finite score field in %+v", c)
			}
		}
		if !s.Feasible && (s.Objective != 0 || s.Reason == "") {
			t.Fatalf("infeasible candidate without zero objective + reason: %+v", c)
		}
	}
}
