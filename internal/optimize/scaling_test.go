package optimize

import (
	"math"
	"testing"

	"spacedc/internal/econ"
	"spacedc/internal/isl"
	"spacedc/internal/netsim"
)

// scalingSpace covers the two altitudes the scaling tests evaluate at, so
// NewEvaluator precomputes both environment traces.
func scalingSpace() Space {
	return Space{
		Planes:       []int{1, 3},
		SatsPerPlane: []int{8},
		AltitudesKm:  []float64{550},
		Topologies:   []TopoChoice{{K: 2, Split: 1}},
		Devices:      []int{2},
		Recoveries:   []string{econ.RecoveryRetry},
	}
}

// TestPlanesScalingMatchesDirectSimulation pins Evaluate's
// DeliveredRate × Planes network objective against a directly simulated
// full-size constellation. Planes are identical and disconnected by
// construction, so the per-plane shortcut must reproduce the full run: a
// P-plane design simulated whole — as P equal shells at the same altitude,
// whose index-aligned cross links join equal-distance nodes the canonical
// router never takes — delivers exactly P× the per-plane segments, and the
// same rate up to summation rounding.
func TestPlanesScalingMatchesDirectSimulation(t *testing.T) {
	const planes = 3
	d := econ.Design{
		Planes: planes, SatsPerPlane: 8, AltitudeKm: 550,
		K: 2, Split: 1, DevicesPerSuDC: 2, Recovery: econ.RecoveryRetry,
	}
	ev, err := NewEvaluator(EvalConfig{ComputeDurationSec: 120}, scalingSpace())
	if err != nil {
		t.Fatal(err)
	}
	score, err := ev.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !score.Feasible {
		t.Fatalf("design infeasible: %s", score.Reason)
	}

	// Re-run the per-plane scenario Evaluate used, verbatim, to pin the
	// formula itself.
	spec, err := ev.specFor(d)
	if err != nil {
		t.Fatal(err)
	}
	base := netsim.Scenario{
		Name:        Key(d),
		Topology:    spec,
		PerSat:      ev.cfg.PerSat,
		StepSec:     ev.cfg.NetStepSec,
		EpochSec:    ev.cfg.NetEpochSec,
		DurationSec: ev.cfg.NetDurationSec,
		Seed:        seedFor(d),
	}
	perPlane, err := netsim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(perPlane.DeliveredRate) / 1e6 * planes; score.NetworkMbps != want {
		t.Errorf("NetworkMbps = %v, want exactly DeliveredRate/1e6 × Planes = %v", score.NetworkMbps, want)
	}

	// Simulate the full constellation in one graph: P equal shells at the
	// same altitude stand in for P disjoint planes.
	full := base
	full.Topology = netsim.TopologySpec{Kind: netsim.ClusterTopology, Tech: isl.Optical10G}
	for i := 0; i < planes; i++ {
		full.Topology.Shells = append(full.Topology.Shells, netsim.ShellSpec{
			Sats: d.SatsPerPlane, Cluster: isl.Topology{K: d.K, Split: d.Split}, AltKm: d.AltitudeKm,
		})
		if i > 0 {
			full.Topology.InterShell = append(full.Topology.InterShell,
				netsim.InterShellRule{Kind: netsim.InterShellAligned})
		}
	}
	whole, err := netsim.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if whole.DeliveredSegs != planes*perPlane.DeliveredSegs {
		t.Errorf("full-size run delivered %d segments, want exactly %d× the per-plane %d",
			whole.DeliveredSegs, planes, perPlane.DeliveredSegs)
	}
	direct := float64(whole.DeliveredRate) / 1e6
	if rel := math.Abs(score.NetworkMbps-direct) / direct; rel > 1e-12 {
		t.Errorf("scaled NetworkMbps %v vs directly simulated %v: rel err %g > 1e-12",
			score.NetworkMbps, direct, rel)
	}
}

// TestMultiShellDesignEvaluates drives a 2-shell design through the full
// evaluation pipeline: it must come back feasible with a finite positive
// objective, and its cost denominator must exceed the single-shell
// design's — the second shell launches at a surcharged altitude, so
// per-shell pricing has to show up in the $/hour.
func TestMultiShellDesignEvaluates(t *testing.T) {
	ev, err := NewEvaluator(EvalConfig{ComputeDurationSec: 120}, scalingSpace())
	if err != nil {
		t.Fatal(err)
	}
	d := econ.Design{
		Planes: 1, SatsPerPlane: 8, AltitudeKm: 550,
		K: 2, Split: 1, DevicesPerSuDC: 2, Recovery: econ.RecoveryRetry,
	}
	single, err := ev.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	d.Shells = 2
	d.InterShell = econ.InterShellNearest
	stacked, err := ev.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !stacked.Feasible {
		t.Fatalf("2-shell design infeasible: %s", stacked.Reason)
	}
	if !(stacked.Objective > 0) || math.IsInf(stacked.Objective, 0) {
		t.Errorf("2-shell objective %v not finite positive", stacked.Objective)
	}
	if stacked.CostPerHour <= single.CostPerHour {
		t.Errorf("2-shell $/h %v not above single-shell %v — per-shell altitude pricing missing",
			stacked.CostPerHour, single.CostPerHour)
	}
	if stacked.NetworkMbps <= single.NetworkMbps {
		t.Errorf("2-shell delivered %v Mbps not above single-shell %v — second shell's sources missing",
			stacked.NetworkMbps, single.NetworkMbps)
	}
	if Key(d) == "p1.s8.a550.k2.x1.geo0.dev2.retry" {
		t.Errorf("multi-shell key %q did not pick up the shell suffix", Key(d))
	}
}
