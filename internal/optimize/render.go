package optimize

import (
	"fmt"

	"spacedc/internal/econ"
	"spacedc/internal/report"
)

// describeTopology names a design's ISL layout for trace rows.
func describeTopology(d econ.Design) string {
	if d.GEO {
		return fmt.Sprintf("geo%d", d.GEOSinks)
	}
	if d.K == 2 && d.Split == 1 {
		return "ring"
	}
	return fmt.Sprintf("k%d×%d", d.K, d.Split)
}

// designCells renders the shared design columns.
func designCells(d econ.Design) []interface{} {
	return []interface{}{
		fmt.Sprintf("%d×%d", d.Planes, d.SatsPerPlane),
		fmt.Sprintf("%.0f", d.AltitudeKm),
		describeTopology(d),
		d.DevicesPerSuDC,
		d.Recovery,
	}
}

// scoreCells renders the shared score columns.
func scoreCells(s Score) []interface{} {
	if !s.Feasible {
		return []interface{}{"—", "—", "—", "—", "infeasible"}
	}
	return []interface{}{
		fmt.Sprintf("%.0f", s.GoodputMbps),
		fmt.Sprintf("%.3f", s.ComputeRatio),
		fmt.Sprintf("%.0f", s.CostPerHour),
		fmt.Sprintf("%.4f", s.Objective),
		"",
	}
}

// TraceTable renders the search trace: one row per proposal, in proposal
// order — the artifact the bit-identity suite compares across worker
// counts.
func TraceTable(out *Outcome) report.Table {
	t := report.Table{
		ID:    "ext-optimize-trace",
		Title: "Design-space search trace (goodput per dollar-hour objective)",
		Note: "one row per proposal in index order; move marks restarts (R), accepted moves (A), cache hits (C); " +
			"objective is delivered-and-surviving Mbps per amortized $/hour",
		Columns: []string{"#", "chain", "move", "planes×sats", "alt (km)", "topology",
			"devices", "recovery", "goodput (Mbps)", "compute ratio", "$/h", "objective", "note"},
	}
	for _, c := range out.Trace {
		move := ""
		if c.Restart {
			move += "R"
		}
		if c.Accepted {
			move += "A"
		}
		if c.Cached {
			move += "C"
		}
		cells := []interface{}{c.Index, c.Chain, move}
		cells = append(cells, designCells(c.Design)...)
		cells = append(cells, scoreCells(c.Score)...)
		t.AddRow(cells...)
	}
	return t
}

// ParetoTable renders the final cost-vs-goodput frontier plus the best
// candidate and the search counters.
func ParetoTable(out *Outcome) report.Table {
	t := report.Table{
		ID:    "ext-optimize-pareto",
		Title: "Cost-vs-goodput Pareto frontier over evaluated designs",
		Note: fmt.Sprintf("best objective %.4f at %s; %d proposals = %d evaluated + %d cache hits "+
			"(%d infeasible, %d accepted, %d rejected, %d restarts)",
			out.Best.Score.Objective, Key(out.Best.Design),
			out.Proposals, out.Evaluated, out.CacheHits,
			out.Infeasible, out.Accepted, out.Rejected, out.Restarts),
		Columns: []string{"planes×sats", "alt (km)", "topology", "devices", "recovery",
			"goodput (Mbps)", "compute ratio", "$/h", "objective", "best"},
	}
	for _, c := range out.Pareto {
		cells := designCells(c.Design)
		s := scoreCells(c.Score)
		cells = append(cells, s[:4]...)
		mark := ""
		if Key(c.Design) == Key(out.Best.Design) {
			mark = "◀"
		}
		cells = append(cells, mark)
		t.AddRow(cells...)
	}
	return t
}

// Tables renders the full outcome (trace + Pareto), the artifact both the
// ext-optimize experiment and the daemon's optimize spec emit.
func Tables(out *Outcome) []report.Table {
	return []report.Table{TraceTable(out), ParetoTable(out)}
}
