package optimize

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"spacedc/internal/apps"
	"spacedc/internal/econ"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/netsim"
	"spacedc/internal/orbit"
	"spacedc/internal/radiation"
	"spacedc/internal/resilience"
	"spacedc/internal/sched"
	"spacedc/internal/units"
)

// EvalConfig tunes the candidate evaluation pipeline: a short netsim run
// prices the network side, a short resilience run prices the compute
// side, and the econ model supplies the $/hour denominator. Zero fields
// take the defaults below — sized so one candidate evaluates in
// milliseconds while still discriminating along every search axis.
type EvalConfig struct {
	// Model prices candidates; the zero value means econ.DefaultCostModel.
	Model econ.CostModel
	// Tech is the ISL link technology. Zero capacity means isl.Optical10G.
	Tech isl.LinkTech
	// PerSat is each EO satellite's generation rate. Zero means 1.5 Gbps —
	// high enough that a bare ring saturates while K ≥ 4 fabrics do not,
	// so the ISL-budget axis has a real optimum.
	PerSat units.DataRate
	// LinkOutage feeds the netsim fault layer (default 0: capacity-limited
	// evaluation).
	LinkOutage float64
	// NetStepSec / NetEpochSec / NetDurationSec size the netsim run
	// (defaults 0.2 / 10 / 20).
	NetStepSec     float64
	NetEpochSec    float64
	NetDurationSec float64

	// ComputeDurationSec sizes the resilience run (default 900).
	ComputeDurationSec float64
	// EnvStepSec samples the orbit-propagated environment trace
	// (default 10).
	EnvStepSec float64
	// InclinationRad sets the evaluation orbit's inclination (default the
	// ISS-like 51.6° that grazes the SAA, so recovery policies matter).
	InclinationRad float64
	// HazardScale multiplies the default COTS upset rate so short runs
	// still discriminate recovery policies (default 5).
	HazardScale float64
	// FramePeriodSec / PixelsPerFrame describe the EO capture feed
	// (defaults 1.5 s / 3e7 — flood detection on RTX 3090-class devices).
	FramePeriodSec float64
	PixelsPerFrame float64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.Model == (econ.CostModel{}) {
		c.Model = econ.DefaultCostModel()
	}
	if c.Tech.Capacity == 0 {
		c.Tech = isl.Optical10G
	}
	if c.PerSat == 0 {
		c.PerSat = 1.5 * units.Gbps
	}
	if c.NetStepSec == 0 {
		c.NetStepSec = 0.2
	}
	if c.NetEpochSec == 0 {
		c.NetEpochSec = 10
	}
	if c.NetDurationSec == 0 {
		c.NetDurationSec = 20
	}
	if c.ComputeDurationSec == 0 {
		c.ComputeDurationSec = 900
	}
	if c.EnvStepSec == 0 {
		c.EnvStepSec = 10
	}
	if c.InclinationRad == 0 {
		c.InclinationRad = 51.6 * math.Pi / 180
	}
	if c.HazardScale == 0 {
		c.HazardScale = 5
	}
	if c.FramePeriodSec == 0 {
		c.FramePeriodSec = 1.5
	}
	if c.PixelsPerFrame == 0 {
		c.PixelsPerFrame = 3e7
	}
	return c
}

// Score is one candidate's evaluation. Every field is finite — infeasible
// designs score zero with a reason instead of a NaN or ±Inf objective, so
// outcomes serialize cleanly and a degenerate candidate can never win.
type Score struct {
	// Feasible is false when the design failed structural validation
	// (netsim.DesignError or econ rejection); Reason says why.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
	// NetworkMbps is the constellation-wide delivered network rate.
	NetworkMbps float64 `json:"network_mbps"`
	// ComputeRatio is the surviving fraction of offered frames under the
	// candidate's recovery policy (≤ 1).
	ComputeRatio float64 `json:"compute_ratio"`
	// GoodputMbps composes the two: delivered rate that also survived
	// compute.
	GoodputMbps float64 `json:"goodput_mbps"`
	// CostPerHour is the econ model's amortized denominator in dollars.
	CostPerHour float64 `json:"cost_per_hour"`
	// Objective is GoodputMbps / CostPerHour — goodput per dollar-hour.
	Objective float64 `json:"objective"`
}

// Evaluator scores candidate designs. It is safe for concurrent use: all
// state after construction is read-only, and evaluation is a pure
// function of the design, so results are independent of which worker
// evaluates a candidate.
type Evaluator struct {
	cfg EvalConfig
	// env caches one orbit-propagated environment trace per altitude in
	// the space, built up front so the parallel phase never writes.
	env map[float64]*resilience.EnvTrace
}

// NewEvaluator validates the configuration and precomputes the
// environment traces for every altitude in the space.
func NewEvaluator(cfg EvalConfig, space Space) (*Evaluator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluator{cfg: cfg, env: make(map[float64]*resilience.EnvTrace)}
	alts := append([]float64(nil), space.AltitudesKm...)
	sort.Float64s(alts)
	for _, alt := range alts {
		if _, ok := ev.env[alt]; ok {
			continue
		}
		el := orbit.CircularLEO(alt, cfg.InclinationRad, 0, 0, Epoch)
		tr, err := resilience.BuildEnvTrace(el, Epoch, cfg.ComputeDurationSec, cfg.EnvStepSec, radiation.DefaultSAA())
		if err != nil {
			return nil, fmt.Errorf("optimize: environment trace at %g km: %w", alt, err)
		}
		ev.env[alt] = tr
	}
	return ev, nil
}

// policyFor maps an econ recovery name onto the resilience policy it
// prices.
func policyFor(name string) (resilience.Policy, error) {
	switch name {
	case econ.RecoveryNone:
		return resilience.Policy{Name: name}, nil
	case econ.RecoveryRetry:
		return resilience.Policy{Name: name, Recovery: resilience.Retry{}}, nil
	case econ.RecoveryCheckpoint:
		return resilience.Policy{Name: name, Recovery: resilience.Checkpoint{CheckpointSec: 1, RestartSec: 1}}, nil
	case econ.RecoveryDMR:
		return resilience.Policy{Name: name, Recovery: resilience.Replicated{N: 2}}, nil
	case econ.RecoveryTMR:
		return resilience.Policy{Name: name, Recovery: resilience.Replicated{N: 3}}, nil
	case econ.RecoverySAAPause:
		return resilience.Policy{Name: name, Recovery: resilience.Retry{}, PauseInSAA: true}, nil
	}
	return resilience.Policy{}, fmt.Errorf("optimize: unknown recovery policy %q", name)
}

// Key canonicalizes a design for caching and seeding: two equal designs
// always share evaluation randomness, so scores are content-addressed.
// Multi-shell designs append a suffix; single-shell keys are unchanged, so
// pre-multi-shell caches and seeds still resolve.
func Key(d econ.Design) string {
	k := fmt.Sprintf("p%d.s%d.a%g.k%d.x%d.geo%d.dev%d.%s",
		d.Planes, d.SatsPerPlane, d.AltitudeKm, d.K, d.Split, d.GEOSinks, d.DevicesPerSuDC, d.Recovery)
	if d.Shells > 1 {
		inter := d.InterShell
		if inter == "" {
			inter = econ.InterShellAligned
		}
		k += fmt.Sprintf(".sh%d.%s", d.Shells, inter)
	}
	return k
}

// seedFor derives the evaluation seed from the design content.
func seedFor(d econ.Design) int64 {
	h := fnv.New64a()
	h.Write([]byte(Key(d)))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// specFor builds the per-plane netsim topology for a design: the validated
// single-shell construction for classic designs, or a shell stack — the
// same cluster at every shell, altitudes stepped by econ.ShellSpacingKm to
// mirror the cost model's stacking — wired by the design's inter-shell
// rule with the default one-pair-per-satellite cross-link budget.
func (ev *Evaluator) specFor(d econ.Design) (netsim.TopologySpec, error) {
	if d.Shells <= 1 {
		return netsim.DesignTopology(d.Planes, d.SatsPerPlane, d.AltitudeKm, d.K, d.Split, d.GEOSinks, ev.cfg.Tech)
	}
	shells := make([]netsim.ShellParams, d.Shells)
	for i := range shells {
		shells[i] = netsim.ShellParams{
			SatsPerPlane: d.SatsPerPlane,
			AltKm:        d.AltitudeKm + float64(i)*econ.ShellSpacingKm,
			K:            d.K,
			Split:        d.Split,
		}
	}
	kind := netsim.InterShellAligned
	if d.InterShell == econ.InterShellNearest {
		kind = netsim.InterShellNearest
	}
	return netsim.DesignShells(shells, kind, 0, ev.cfg.Tech)
}

// structuralOK reports whether a design passes both validation layers
// without running any simulation, for cheap proposal filtering.
func (ev *Evaluator) structuralOK(d econ.Design) bool {
	if d.Validate() != nil {
		return false
	}
	_, err := ev.specFor(d)
	return err == nil
}

// Evaluate scores one design: netsim prices the network, resilience the
// compute survivability, econ the denominator. Structural rejections come
// back as an infeasible Score (nil error); a non-nil error means the
// simulators themselves failed.
func (ev *Evaluator) Evaluate(d econ.Design) (Score, error) {
	breakdown, err := econ.Cost(ev.cfg.Model, d)
	if err != nil {
		return Score{Reason: err.Error()}, nil
	}
	spec, err := ev.specFor(d)
	if err != nil {
		var de *netsim.DesignError
		if errors.As(err, &de) {
			return Score{Reason: de.Error()}, nil
		}
		return Score{}, err
	}
	seed := seedFor(d)

	// Network side: one plane's fabric under the candidate's ISL budget,
	// scaled by the plane count (planes are identical by construction).
	res, err := netsim.Run(netsim.Scenario{
		Name:        Key(d),
		Topology:    spec,
		PerSat:      ev.cfg.PerSat,
		Faults:      netsim.FaultConfig{LinkOutage: ev.cfg.LinkOutage},
		StepSec:     ev.cfg.NetStepSec,
		EpochSec:    ev.cfg.NetEpochSec,
		DurationSec: ev.cfg.NetDurationSec,
		Seed:        seed,
	})
	if err != nil {
		return Score{}, fmt.Errorf("optimize: netsim for %s: %w", Key(d), err)
	}
	networkMbps := float64(res.DeliveredRate) / 1e6 * float64(d.Planes)

	// Compute side: one SµDC's device gang fed by its share of the
	// satellites, under the candidate's recovery policy in the SAA-grazing
	// hazard environment.
	satsFed := feedPerSuDC(d)
	proc, err := sched.NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, d.DevicesPerSuDC)
	if err != nil {
		return Score{}, err
	}
	pol, err := policyFor(d.Recovery)
	if err != nil {
		return Score{}, err
	}
	hazard := resilience.DefaultHazard()
	hazard.BaseRatePerSec *= ev.cfg.HazardScale
	sc := resilience.Scenario{
		Base: sched.Config{
			Satellites:     satsFed,
			FramePeriodSec: ev.cfg.FramePeriodSec,
			PixelsPerFrame: ev.cfg.PixelsPerFrame,
			TargetBatch:    32,
			MaxBatch:       32,
			MaxWaitSec:     60,
			QueueLimit:     200,
			DurationSec:    ev.cfg.ComputeDurationSec,
			Seed:           seed,
		},
		Proc:   proc,
		Env:    ev.env[d.AltitudeKm],
		Hazard: hazard,
	}
	// The dummy baseline skips the fault-free re-simulation Evaluate would
	// otherwise run per candidate; it only feeds EnergyOverhead, which the
	// objective never reads.
	rep, err := sc.Evaluate(pol, sched.Stats{EnergyJ: 1})
	if err != nil {
		return Score{}, fmt.Errorf("optimize: resilience for %s: %w", Key(d), err)
	}
	offeredFPS := float64(satsFed) / ev.cfg.FramePeriodSec
	ratio := rep.GoodputFPS / offeredFPS
	if ratio > 1 {
		ratio = 1
	}
	if ratio < 0 || math.IsNaN(ratio) {
		ratio = 0
	}

	s := Score{
		Feasible:     true,
		NetworkMbps:  networkMbps,
		ComputeRatio: ratio,
		GoodputMbps:  networkMbps * ratio,
		CostPerHour:  float64(breakdown.PerHour),
	}
	s.Objective = s.GoodputMbps / s.CostPerHour
	for _, v := range []float64{s.NetworkMbps, s.ComputeRatio, s.GoodputMbps, s.CostPerHour, s.Objective} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Score{}, fmt.Errorf("optimize: non-finite score %+v for %s", s, Key(d))
		}
	}
	return s, nil
}

// feedPerSuDC returns the EO satellites one SµDC ingests.
func feedPerSuDC(d econ.Design) int {
	sinks := d.SuDCs()
	if sinks < 1 {
		sinks = 1
	}
	var sats int
	if d.GEO {
		sats = d.TotalSats()
	} else {
		sats = d.SatsPerPlane
		sinks = d.Split
	}
	fed := (sats + sinks - 1) / sinks
	if fed < 1 {
		fed = 1
	}
	return fed
}
