// Package optimize is the constellation design-space optimizer: a
// deterministic heuristic search — seeded random restarts plus local
// neighborhood moves with optional simulated-annealing acceptance — over
// planes, satellites per plane, altitude, ISL topology (ring / k-list /
// splitting / GEO star), SµDC sizing, and recovery policy, maximizing
// goodput per dollar. Candidates are evaluated through the existing
// simulators (netsim for the network, resilience/sched for compute
// survivability) against the internal/econ cost model, and fan out over
// internal/pool.
//
// Determinism contract: every random draw for candidate i comes from an
// RNG stream keyed by (seed, i), proposals are generated and accepted
// serially in index order, and only the pure evaluation function runs in
// parallel — so a search is bit-reproducible at any worker count, which
// TestOptimizeBitIdentity locks down under -race.
package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"spacedc/internal/econ"
	"spacedc/internal/obs"
	"spacedc/internal/pool"
)

// Epoch anchors the evaluation orbits (shared with the experiment suite's
// epoch so optimizer scores line up with the resilience studies).
var Epoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// TopoChoice is one point on the ISL-topology axis: a cluster fabric
// (even K ≥ 2 receiver fan-in, Split SµDCs per plane) or a GEO star
// (GEOSinks > 0, no in-plane fabric).
type TopoChoice struct {
	K        int `json:"k,omitempty"`
	Split    int `json:"split,omitempty"`
	GEOSinks int `json:"geo_sinks,omitempty"`
}

// String names the choice for trace tables.
func (tc TopoChoice) String() string {
	if tc.GEOSinks > 0 {
		return fmt.Sprintf("geo%d", tc.GEOSinks)
	}
	if tc.K == 2 && tc.Split == 1 {
		return "ring"
	}
	return fmt.Sprintf("k%d×%d", tc.K, tc.Split)
}

// Space is the finite design space the search moves through: one slice of
// admissible values per axis. Not every combination needs to be
// structurally valid — invalid combinations are skipped by the proposal
// filter — but at least one must be.
type Space struct {
	Planes       []int        `json:"planes"`
	SatsPerPlane []int        `json:"sats_per_plane"`
	AltitudesKm  []float64    `json:"altitudes_km"`
	Topologies   []TopoChoice `json:"topologies"`
	Devices      []int        `json:"devices"`
	Recoveries   []string     `json:"recoveries"`

	// ShellCounts is the optional shell-count axis (empty means {1}: the
	// classic single-shell space). Counts > 1 stack the cluster design
	// that many shells deep at econ.ShellSpacingKm intervals; GEO
	// topologies never stack (the combination is filtered as invalid).
	ShellCounts []int `json:"shell_counts,omitempty"`
	// InterShells is the optional inter-shell topology axis
	// (econ.InterShellAligned / econ.InterShellNearest; empty means
	// {aligned}). It only matters for designs with > 1 shell.
	InterShells []string `json:"inter_shells,omitempty"`
}

// DefaultSpace is the study space behind ext-optimize and the daemon's
// default optimize spec: 2880 combinations spanning the paper's design
// axes.
func DefaultSpace() Space {
	return Space{
		Planes:       []int{1, 2, 3, 4},
		SatsPerPlane: []int{8, 12, 16, 24},
		AltitudesKm:  []float64{550, 800, 1200},
		Topologies: []TopoChoice{
			{K: 2, Split: 1},
			{K: 4, Split: 1},
			{K: 4, Split: 2},
			{K: 6, Split: 2},
			{GEOSinks: 3},
		},
		Devices:    []int{1, 2, 4},
		Recoveries: []string{econ.RecoveryNone, econ.RecoveryRetry, econ.RecoveryCheckpoint, econ.RecoveryTMR},
	}
}

// Validate rejects spaces with empty axes or malformed shell axes.
func (s Space) Validate() error {
	if len(s.Planes) == 0 || len(s.SatsPerPlane) == 0 || len(s.AltitudesKm) == 0 ||
		len(s.Topologies) == 0 || len(s.Devices) == 0 || len(s.Recoveries) == 0 {
		return fmt.Errorf("optimize: space has an empty axis: %+v", s)
	}
	for _, n := range s.ShellCounts {
		if n < 1 {
			return fmt.Errorf("optimize: shell count %d < 1 in space", n)
		}
	}
	for _, name := range s.InterShells {
		if name != econ.InterShellAligned && name != econ.InterShellNearest {
			return fmt.Errorf("optimize: unknown inter-shell rule %q in space", name)
		}
	}
	return nil
}

// axes is the number of search axes in a design vector. The last two —
// shell count and inter-shell topology — are optional; see activeAxes.
const axes = 8

// legacyAxes are the always-present axes of the original 6-axis space.
const legacyAxes = 6

// shellCounts returns the shell-count axis with its {1} default applied.
func (s Space) shellCounts() []int {
	if len(s.ShellCounts) == 0 {
		return []int{1}
	}
	return s.ShellCounts
}

// interShells returns the inter-shell axis with its {aligned} default.
func (s Space) interShells() []string {
	if len(s.InterShells) == 0 {
		return []string{econ.InterShellAligned}
	}
	return s.InterShells
}

// activeAxes returns how many axes random draws walk. Spaces that leave
// both shell axes at a single value keep the legacy 6-axis draw sequence,
// so every pre-multi-shell seed reproduces its exact search trace; only a
// space that actually searches over shells consumes the extra draws.
func (s Space) activeAxes() int {
	if len(s.shellCounts()) > 1 || len(s.interShells()) > 1 {
		return axes
	}
	return legacyAxes
}

// dims returns the per-axis cardinalities.
func (s Space) dims() [axes]int {
	return [axes]int{len(s.Planes), len(s.SatsPerPlane), len(s.AltitudesKm),
		len(s.Topologies), len(s.Devices), len(s.Recoveries),
		len(s.shellCounts()), len(s.interShells())}
}

// Size returns the total combination count.
func (s Space) Size() int {
	n := 1
	for _, d := range s.dims() {
		n *= d
	}
	return n
}

// design materializes the index vector v into a candidate design.
func (s Space) design(v [axes]int) econ.Design {
	topo := s.Topologies[v[3]]
	d := econ.Design{
		Planes:         s.Planes[v[0]],
		SatsPerPlane:   s.SatsPerPlane[v[1]],
		AltitudeKm:     s.AltitudesKm[v[2]],
		DevicesPerSuDC: s.Devices[v[4]],
		Recovery:       s.Recoveries[v[5]],
	}
	if topo.GEOSinks > 0 {
		d.GEO = true
		d.GEOSinks = topo.GEOSinks
	} else {
		d.K = topo.K
		d.Split = topo.Split
	}
	if sc := s.shellCounts()[v[6]]; sc > 1 {
		d.Shells = sc
		d.InterShell = s.interShells()[v[7]]
	}
	return d
}

// Config tunes a search run.
type Config struct {
	// Seed drives every random draw; equal seeds give bit-identical runs.
	Seed int64 `json:"seed"`
	// Budget is the total number of candidate proposals (evaluations plus
	// cache hits). Zero means 64.
	Budget int `json:"budget"`
	// Restarts is the number of independent hill-climbing chains. Zero
	// means 4.
	Restarts int `json:"restarts"`
	// StalePatience restarts a chain after this many consecutive rejected
	// moves. Zero means 3.
	StalePatience int `json:"stale_patience"`
	// Anneal enables simulated-annealing acceptance of worse moves under
	// a linearly cooling temperature.
	Anneal bool `json:"anneal"`
	// InitTemp is the initial relative-delta temperature when annealing.
	// Zero means 0.05.
	InitTemp float64 `json:"init_temp"`
	// Workers caps the evaluation fan-out slots on the shared pool
	// (0 = one per CPU, 1 = serial). Never affects results.
	Workers int `json:"workers"`
	// Eval configures the candidate evaluation pipeline.
	Eval EvalConfig `json:"-"`
	// Obs, when non-nil, receives optimizer counters, the best-objective
	// gauge, and per-round "optimize.best_objective" progress samples
	// timestamped by candidates evaluated (sim-clock friendly, so serve
	// snapshots stay deterministic). Write-only: results are identical
	// with or without it.
	Obs *obs.Registry `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = 64
	}
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	if c.StalePatience == 0 {
		c.StalePatience = 3
	}
	if c.InitTemp == 0 {
		c.InitTemp = 0.05
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Budget < 1 {
		return fmt.Errorf("optimize: budget %d < 1", c.Budget)
	}
	if c.Restarts < 1 {
		return fmt.Errorf("optimize: restarts %d < 1", c.Restarts)
	}
	if c.InitTemp < 0 || math.IsNaN(c.InitTemp) || math.IsInf(c.InitTemp, 0) {
		return fmt.Errorf("optimize: invalid initial temperature %v", c.InitTemp)
	}
	return nil
}

// Candidate is one proposal in the search trace.
type Candidate struct {
	// Index is the global proposal index (also the RNG stream key).
	Index int `json:"index"`
	// Chain is the restart chain that proposed it.
	Chain  int         `json:"chain"`
	Design econ.Design `json:"design"`
	Score  Score       `json:"score"`
	// Accepted marks proposals the chain moved to.
	Accepted bool `json:"accepted"`
	// Restart marks fresh random starts (round zero and stale restarts).
	Restart bool `json:"restart"`
	// Cached marks proposals scored from the content-addressed cache.
	Cached bool `json:"cached"`
}

// Outcome is a completed search.
type Outcome struct {
	Best  Candidate   `json:"best"`
	Trace []Candidate `json:"trace"`
	// Pareto is the cost-vs-goodput frontier over distinct feasible
	// candidates, cheapest first.
	Pareto []Candidate `json:"pareto"`

	Proposals  int `json:"proposals"`
	Evaluated  int `json:"evaluated"`
	CacheHits  int `json:"cache_hits"`
	Infeasible int `json:"infeasible"`
	Accepted   int `json:"accepted"`
	Rejected   int `json:"rejected"`
	Restarts   int `json:"restarts"`
}

// mix derives the RNG stream for candidate index i from the search seed
// (splitmix64 finalizer — adjacent indices land far apart).
func mix(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// rngFor returns candidate i's private RNG stream.
func rngFor(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, i)))
}

// randomValid draws a structurally valid index vector, or ok=false after
// a bounded number of tries (a space may be almost entirely invalid).
func randomValid(s Space, ev *Evaluator, rng *rand.Rand) ([axes]int, bool) {
	dims := s.dims()
	active := s.activeAxes()
	for try := 0; try < 64; try++ {
		var v [axes]int
		for a := 0; a < active; a++ {
			v[a] = rng.Intn(dims[a])
		}
		if ev.structuralOK(s.design(v)) {
			return v, true
		}
	}
	return [axes]int{}, false
}

// neighbor resamples one axis of v uniformly (a Hamming-1 move: any
// other value on a single axis), retrying until the result is
// structurally valid and distinct; ok=false when the neighborhood is
// exhausted for this stream. Resampling rather than ±1 stepping keeps
// categorical axes (topology, recovery) and short ordinal axes from
// trapping a chain behind a one-step valley.
func neighbor(s Space, ev *Evaluator, v [axes]int, rng *rand.Rand) ([axes]int, bool) {
	dims := s.dims()
	active := s.activeAxes()
	for try := 0; try < 32; try++ {
		a := rng.Intn(active)
		if dims[a] < 2 {
			continue
		}
		n := v
		n[a] = rng.Intn(dims[a])
		if n == v {
			continue
		}
		if ev.structuralOK(s.design(n)) {
			return n, true
		}
	}
	return v, false
}

// chain is one restart chain's state.
type chain struct {
	vec     [axes]int
	score   Score
	started bool
	stale   int
}

// proposal is one round entry: the design a chain puts forward plus the
// RNG stream that proposed it (reused for its acceptance draw).
type proposal struct {
	index   int
	chain   int
	vec     [axes]int
	restart bool
	rng     *rand.Rand
}

// counters bundles the optimizer's obs instrumentation.
type counters struct {
	proposals, evaluated, cacheHits *obs.Counter
	infeasible, accepted, rejected  *obs.Counter
	restarts                        *obs.Counter
	best                            *obs.Gauge
}

func newCounters(reg *obs.Registry) counters {
	return counters{
		proposals:  reg.Counter("optimize.proposals"),
		evaluated:  reg.Counter("optimize.evaluated"),
		cacheHits:  reg.Counter("optimize.cache_hits"),
		infeasible: reg.Counter("optimize.infeasible"),
		accepted:   reg.Counter("optimize.accepted"),
		rejected:   reg.Counter("optimize.rejected"),
		restarts:   reg.Counter("optimize.restarts"),
		best:       reg.Gauge("optimize.best_objective"),
	}
}

// Search runs the heuristic: Restarts hill-climbing chains propose one
// neighbor each per round, the round's distinct uncached designs evaluate
// in parallel on the shared pool, and acceptance plays back serially in
// proposal order. A chain restarts from a fresh random draw after
// StalePatience consecutive rejections. With cfg.Anneal, worse moves are
// accepted with probability exp(Δ/T) under a linearly cooling relative
// temperature.
func Search(ctx context.Context, cfg Config, space Space) (*Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ev, err := NewEvaluator(cfg.Eval, space)
	if err != nil {
		return nil, err
	}
	ctr := newCounters(cfg.Obs)

	chains := make([]chain, cfg.Restarts)
	cache := make(map[string]Score)
	out := &Outcome{}
	out.Best.Index = -1
	// bestVec tracks the incumbent best's index vector for basin-hopping
	// restarts.
	var bestVec [axes]int

	for out.Proposals < cfg.Budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Propose serially: one candidate per chain, each from its own
		// index-keyed RNG stream.
		var props []proposal
		for c := range chains {
			if out.Proposals+len(props) >= cfg.Budget {
				break
			}
			rng := rngFor(cfg.Seed, out.Proposals+len(props))
			p := proposal{index: out.Proposals + len(props), chain: c, rng: rng}
			ch := &chains[c]
			fresh := !ch.started || ch.stale >= cfg.StalePatience
			if fresh {
				var v [axes]int
				ok := false
				// Stale restarts basin-hop half the time: a two-move
				// perturbation of the incumbent best intensifies around the
				// good region, while the other half stays a uniform random
				// draw for diversification. Round-zero starts are always
				// uniform.
				if ch.started && out.Best.Index >= 0 && rng.Intn(2) == 0 {
					v, ok = bestVec, true
					for m := 0; m < 2; m++ {
						if n, moved := neighbor(space, ev, v, rng); moved {
							v = n
						}
					}
				}
				if !ok {
					v, ok = randomValid(space, ev, rng)
				}
				if !ok {
					return nil, fmt.Errorf("optimize: no structurally valid design found in space")
				}
				p.vec, p.restart = v, true
			} else {
				v, ok := neighbor(space, ev, ch.vec, rng)
				if !ok {
					// Local neighborhood exhausted: restart instead.
					v, ok = randomValid(space, ev, rng)
					if !ok {
						return nil, fmt.Errorf("optimize: no structurally valid design found in space")
					}
					p.restart = true
				}
				p.vec = v
			}
			props = append(props, p)
		}
		if len(props) == 0 {
			break
		}

		// Evaluate the round's distinct uncached designs in parallel. The
		// registry is deliberately not passed to the pool: worker wall-time
		// histograms would differ run to run.
		type job struct {
			key    string
			design econ.Design
			score  Score
		}
		var jobs []job
		// evalOwner maps a design key to the proposal index whose turn paid
		// for its evaluation this round; every other proposal of the same
		// design is a cache hit.
		evalOwner := make(map[string]int)
		for _, p := range props {
			d := space.design(p.vec)
			k := Key(d)
			if _, hit := cache[k]; hit {
				continue
			}
			if _, queued := evalOwner[k]; queued {
				continue
			}
			evalOwner[k] = p.index
			jobs = append(jobs, job{key: k, design: d})
		}
		if err := pool.Map(len(jobs), cfg.Workers, func(id int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			s, err := ev.Evaluate(jobs[id].design)
			if err != nil {
				return err
			}
			jobs[id].score = s
			return nil
		}); err != nil {
			return nil, err
		}
		for _, j := range jobs {
			cache[j.key] = j.score
			out.Evaluated++
			ctr.evaluated.Inc()
		}

		// Acceptance plays back serially in proposal order.
		for _, p := range props {
			d := space.design(p.vec)
			k := Key(d)
			score := cache[k]
			cand := Candidate{
				Index: p.index, Chain: p.chain, Design: d, Score: score,
				Restart: p.restart,
			}
			if owner, ok := evalOwner[k]; !ok || owner != p.index {
				cand.Cached = true
				out.CacheHits++
				ctr.cacheHits.Inc()
			}
			out.Proposals++
			ctr.proposals.Inc()

			ch := &chains[p.chain]
			switch {
			case !score.Feasible:
				out.Infeasible++
				ctr.infeasible.Inc()
				out.Rejected++
				ctr.rejected.Inc()
				if ch.started {
					ch.stale++
				}
			case p.restart || !ch.started:
				if p.restart && ch.started {
					out.Restarts++
					ctr.restarts.Inc()
				}
				ch.vec, ch.score, ch.started, ch.stale = p.vec, score, true, 0
				cand.Accepted = true
				out.Accepted++
				ctr.accepted.Inc()
			case accept(score.Objective, ch.score.Objective, cfg, out.Proposals, p.rng):
				ch.vec, ch.score, ch.stale = p.vec, score, 0
				cand.Accepted = true
				out.Accepted++
				ctr.accepted.Inc()
			default:
				ch.stale++
				out.Rejected++
				ctr.rejected.Inc()
			}
			if score.Feasible && (out.Best.Index < 0 || score.Objective > out.Best.Score.Objective) {
				out.Best = cand
				bestVec = p.vec
			}
			out.Trace = append(out.Trace, cand)
		}

		// Stream round progress on the registry's sim clock (candidate
		// count as the time axis keeps snapshots deterministic).
		if cfg.Obs != nil && out.Best.Index >= 0 {
			ctr.best.Set(out.Best.Score.Objective)
			cfg.Obs.SetTime(float64(out.Proposals))
			cfg.Obs.Emit("optimize.best_objective", "sample", out.Best.Score.Objective)
		}
	}

	if out.Best.Index < 0 {
		return nil, fmt.Errorf("optimize: no feasible candidate in %d proposals", out.Proposals)
	}
	out.Pareto = paretoFront(out.Trace)
	return out, nil
}

// accept decides a non-restart move. Greedy by default; with annealing,
// worse moves pass with probability exp(Δrel/T) under a temperature that
// cools linearly over the budget.
func accept(next, cur float64, cfg Config, proposals int, rng *rand.Rand) bool {
	if next > cur {
		return true
	}
	if !cfg.Anneal {
		return false
	}
	t := cfg.InitTemp * (1 - float64(proposals)/float64(cfg.Budget))
	if t <= 0 {
		return false
	}
	scale := math.Abs(cur)
	if scale == 0 {
		return false
	}
	delta := (next - cur) / scale
	return rng.Float64() < math.Exp(delta/t)
}

// paretoFront extracts the cost-vs-goodput frontier over distinct
// feasible candidates: cheapest first, goodput strictly increasing.
func paretoFront(trace []Candidate) []Candidate {
	byKey := make(map[string]Candidate)
	for _, c := range trace {
		if !c.Score.Feasible {
			continue
		}
		k := Key(c.Design)
		if _, ok := byKey[k]; !ok {
			byKey[k] = c
		}
	}
	all := make([]Candidate, 0, len(byKey))
	for _, c := range byKey {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score.CostPerHour != all[j].Score.CostPerHour {
			return all[i].Score.CostPerHour < all[j].Score.CostPerHour
		}
		return Key(all[i].Design) < Key(all[j].Design)
	})
	var front []Candidate
	bestGoodput := math.Inf(-1)
	for _, c := range all {
		if c.Score.GoodputMbps > bestGoodput {
			front = append(front, c)
			bestGoodput = c.Score.GoodputMbps
		}
	}
	return front
}

// RandomSearch is the equal-budget baseline: Budget independent uniform
// draws from the space, no locality, same evaluator and caching. The
// differential suite asserts Search beats its median.
func RandomSearch(ctx context.Context, cfg Config, space Space) (*Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ev, err := NewEvaluator(cfg.Eval, space)
	if err != nil {
		return nil, err
	}
	ctr := newCounters(cfg.Obs)
	out := &Outcome{}
	out.Best.Index = -1
	cache := make(map[string]Score)

	type slot struct {
		design econ.Design
		ok     bool
	}
	draws := make([]slot, cfg.Budget)
	for i := range draws {
		v, ok := randomValid(space, ev, rngFor(cfg.Seed, i))
		draws[i] = slot{design: space.design(v), ok: ok}
	}
	keys := make([]string, cfg.Budget)
	jobIdx := make(map[string]int)
	var designs []econ.Design
	for i, d := range draws {
		if !d.ok {
			continue
		}
		keys[i] = Key(d.design)
		if _, ok := jobIdx[keys[i]]; !ok {
			jobIdx[keys[i]] = len(designs)
			designs = append(designs, d.design)
		}
	}
	scores := make([]Score, len(designs))
	if err := pool.Map(len(designs), cfg.Workers, func(id int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		s, err := ev.Evaluate(designs[id])
		if err != nil {
			return err
		}
		scores[id] = s
		return nil
	}); err != nil {
		return nil, err
	}
	for i, d := range draws {
		if !d.ok {
			continue
		}
		k := keys[i]
		score := scores[jobIdx[k]]
		_, hit := cache[k]
		cache[k] = score
		cand := Candidate{Index: i, Design: d.design, Score: score, Restart: true, Cached: hit}
		out.Proposals++
		ctr.proposals.Inc()
		if hit {
			out.CacheHits++
			ctr.cacheHits.Inc()
		} else {
			out.Evaluated++
			ctr.evaluated.Inc()
		}
		if !score.Feasible {
			out.Infeasible++
			ctr.infeasible.Inc()
		} else if out.Best.Index < 0 || score.Objective > out.Best.Score.Objective {
			cand.Accepted = true
			out.Best = cand
			out.Accepted++
			ctr.accepted.Inc()
		} else {
			out.Rejected++
			ctr.rejected.Inc()
		}
		out.Trace = append(out.Trace, cand)
	}
	if out.Best.Index < 0 {
		return nil, fmt.Errorf("optimize: no feasible candidate in %d random draws", out.Proposals)
	}
	ctr.best.Set(out.Best.Score.Objective)
	out.Pareto = paretoFront(out.Trace)
	return out, nil
}

// Exhaustive evaluates every structurally valid design in the space in
// axis order (the ground truth for small spaces; the differential suite
// compares Search against it on a seeded subspace).
func Exhaustive(ctx context.Context, cfg Config, space Space) (*Outcome, error) {
	cfg = cfg.withDefaults()
	ev, err := NewEvaluator(cfg.Eval, space)
	if err != nil {
		return nil, err
	}
	dims := space.dims()
	var vecs [][axes]int
	var v [axes]int
	var walk func(a int)
	walk = func(a int) {
		if a == axes {
			if ev.structuralOK(space.design(v)) {
				vecs = append(vecs, v)
			}
			return
		}
		for i := 0; i < dims[a]; i++ {
			v[a] = i
			walk(a + 1)
		}
	}
	walk(0)
	if len(vecs) == 0 {
		return nil, fmt.Errorf("optimize: no structurally valid design in space")
	}
	out := &Outcome{}
	out.Best.Index = -1
	scores := make([]Score, len(vecs))
	if err := pool.Map(len(vecs), cfg.Workers, func(id int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		s, err := ev.Evaluate(space.design(vecs[id]))
		if err != nil {
			return err
		}
		scores[id] = s
		return nil
	}); err != nil {
		return nil, err
	}
	for i, vec := range vecs {
		cand := Candidate{Index: i, Design: space.design(vec), Score: scores[i]}
		out.Proposals++
		out.Evaluated++
		if !scores[i].Feasible {
			out.Infeasible++
		} else if out.Best.Index < 0 || scores[i].Objective > out.Best.Score.Objective {
			out.Best = cand
		}
		out.Trace = append(out.Trace, cand)
	}
	if out.Best.Index < 0 {
		return nil, fmt.Errorf("optimize: no feasible candidate among %d designs", len(vecs))
	}
	out.Pareto = paretoFront(out.Trace)
	return out, nil
}
