package compress

// Integer 5/3 (LeGall) discrete wavelet transform with lifting — the
// reversible transform of JPEG2000 lossless and CCSDS 122.0. The forward
// transform maps integers to integers and the inverse reconstructs them
// exactly, so codecs built on it stay lossless.

// fwd53 transforms signal x in place into [low | high] subbands, returning
// the low-band length. Uses symmetric extension at the boundaries.
func fwd53(x []int32) int {
	n := len(x)
	if n < 2 {
		return n
	}
	nLow := (n + 1) / 2
	nHigh := n / 2
	low := make([]int32, nLow)
	high := make([]int32, nHigh)

	at := func(i int) int32 { // symmetric extension
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
		return x[i]
	}

	// Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2).
	for i := 0; i < nHigh; i++ {
		high[i] = at(2*i+1) - (at(2*i)+at(2*i+2))>>1
	}
	hAt := func(i int) int32 { // symmetric extension over the high band
		if nHigh == 0 {
			return 0
		}
		if i < 0 {
			i = -i - 1
		}
		if i >= nHigh {
			i = n - 2 - i // odd sample 2i+1 reflected about n-1
		}
		return high[i]
	}
	// Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4).
	for i := 0; i < nLow; i++ {
		low[i] = at(2*i) + (hAt(i-1)+hAt(i)+2)>>2
	}

	copy(x[:nLow], low)
	copy(x[nLow:], high)
	return nLow
}

// inv53 inverts fwd53 given the packed [low | high] signal.
func inv53(x []int32) {
	n := len(x)
	if n < 2 {
		return
	}
	nLow := (n + 1) / 2
	nHigh := n / 2
	low := make([]int32, nLow)
	high := make([]int32, nHigh)
	copy(low, x[:nLow])
	copy(high, x[nLow:])

	// Band-space symmetric extension must mirror the full-signal
	// extension the forward pass used: high[i] holds odd sample 2i+1, so
	// reflecting 2i+1 about n-1 gives band index n-2-i; even[i] holds
	// sample 2i, reflecting gives n-1-i.
	hAt := func(i int) int32 {
		if nHigh == 0 {
			return 0
		}
		if i < 0 {
			i = -i - 1
		}
		if i >= nHigh {
			i = n - 2 - i
		}
		return high[i]
	}

	even := make([]int32, nLow)
	for i := 0; i < nLow; i++ {
		even[i] = low[i] - (hAt(i-1)+hAt(i)+2)>>2
	}
	eAt := func(i int) int32 {
		if i < 0 {
			i = -i
		}
		if i >= nLow {
			i = n - 1 - i
		}
		return even[i]
	}
	for i := 0; i < nLow; i++ {
		x[2*i] = even[i]
	}
	for i := 0; i < nHigh; i++ {
		x[2*i+1] = high[i] + (eAt(i)+eAt(i+1))>>1
	}
}

// dwt2D applies `levels` of 2-D 5/3 DWT to a w×h plane in place. Each level
// transforms the current LL quadrant's rows then columns. Returns the
// sequence of (w, h) sizes per level for the inverse.
func dwt2D(plane []int32, w, h, levels int) [][2]int {
	sizes := make([][2]int, 0, levels)
	cw, ch := w, h
	row := make([]int32, w)
	col := make([]int32, h)
	for l := 0; l < levels && cw >= 2 && ch >= 2; l++ {
		sizes = append(sizes, [2]int{cw, ch})
		// Rows.
		for y := 0; y < ch; y++ {
			copy(row[:cw], plane[y*w:y*w+cw])
			fwd53(row[:cw])
			copy(plane[y*w:y*w+cw], row[:cw])
		}
		// Columns.
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			fwd53(col[:ch])
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		cw = (cw + 1) / 2
		ch = (ch + 1) / 2
	}
	return sizes
}

// idwt2D inverts dwt2D given the per-level sizes it returned.
func idwt2D(plane []int32, w int, sizes [][2]int) {
	row := make([]int32, w)
	var colBuf []int32
	for l := len(sizes) - 1; l >= 0; l-- {
		cw, ch := sizes[l][0], sizes[l][1]
		if cap(colBuf) < ch {
			colBuf = make([]int32, ch)
		}
		col := colBuf[:ch]
		// Columns first (reverse of forward order).
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			inv53(col)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		// Rows.
		for y := 0; y < ch; y++ {
			copy(row[:cw], plane[y*w:y*w+cw])
			inv53(row[:cw])
			copy(plane[y*w:y*w+cw], row[:cw])
		}
	}
}

// mapToUnsigned folds a signed value into a non-negative one for Rice
// coding: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
func mapToUnsigned(v int32) uint32 {
	if v >= 0 {
		return uint32(v) << 1
	}
	return uint32(-v)<<1 - 1
}

// mapToSigned inverts mapToUnsigned.
func mapToSigned(u uint32) int32 {
	if u&1 == 0 {
		return int32(u >> 1)
	}
	return -int32((u + 1) >> 1)
}
