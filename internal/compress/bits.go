package compress

import "bytes"

// bitWriter packs bits MSB-first into a byte buffer.
type bitWriter struct {
	buf  bytes.Buffer
	cur  byte
	nCur uint // bits used in cur
}

// writeBit appends one bit.
func (w *bitWriter) writeBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf.WriteByte(w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// writeBits appends the low n bits of v, MSB first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(uint(v >> uint(i)))
	}
}

// writeUnary appends q ones followed by a zero.
func (w *bitWriter) writeUnary(q uint32) {
	for i := uint32(0); i < q; i++ {
		w.writeBit(1)
	}
	w.writeBit(0)
}

// bytes flushes the partial byte (zero-padded) and returns the stream.
func (w *bitWriter) bytes() []byte {
	if w.nCur > 0 {
		w.buf.WriteByte(w.cur << (8 - w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf.Bytes()
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	data []byte
	pos  int  // byte index
	bit  uint // bits consumed within data[pos]
}

// readBit returns the next bit, or an error at end of stream.
func (r *bitReader) readBit() (uint, error) {
	if r.pos >= len(r.data) {
		return 0, ErrCorrupt
	}
	b := (r.data[r.pos] >> (7 - r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return uint(b), nil
}

// readBits returns the next n bits as an unsigned integer.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// readUnary counts ones until the terminating zero.
func (r *bitReader) readUnary(limit uint32) (uint32, error) {
	var q uint32
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
		if q > limit {
			return 0, ErrCorrupt
		}
	}
}
