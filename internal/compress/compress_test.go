package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"spacedc/internal/eoimage"
)

// roundTrip verifies codec(data) decodes back to data.
func roundTrip(t *testing.T, c Codec, data []byte) Result {
	t.Helper()
	r, err := Measure(c, data)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	return r
}

func testScene(t *testing.T, seed int64) *eoimage.Scene {
	t.Helper()
	s, err := eoimage.Generate(eoimage.Config{
		Width: 128, Height: 128, Seed: seed, Kind: eoimage.Urban, CloudFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := (RLE{}).Compress(data)
		if err != nil {
			return false
		}
		back, err := (RLE{}).Decompress(comp)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 10000)
	r := roundTrip(t, RLE{}, data)
	if r.Ratio < 50 {
		t.Errorf("RLE on constant data: ratio %v, want ≫ 50", r.Ratio)
	}
}

func TestRLEWorstCase(t *testing.T) {
	// Alternating bytes have no runs; RLE must not blow up badly.
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 7)
	}
	r := roundTrip(t, RLE{}, data)
	if r.Ratio < 0.9 {
		t.Errorf("RLE worst case ratio %v, want ≥ 0.9 (bounded expansion)", r.Ratio)
	}
}

func TestRLEDecompressCorrupt(t *testing.T) {
	// Literal header promising more bytes than available.
	if _, err := (RLE{}).Decompress([]byte{10, 1, 2}); err == nil {
		t.Error("truncated literal accepted")
	}
	// Repeat header with no value byte.
	if _, err := (RLE{}).Decompress([]byte{200}); err == nil {
		t.Error("truncated repeat accepted")
	}
}

func TestLZWZipRoundTripsOnImagery(t *testing.T) {
	s := testScene(t, 1)
	data := s.Interleaved()
	for _, c := range []Codec{LZW{}, Zip{}} {
		r := roundTrip(t, c, data)
		if r.Ratio <= 1 {
			t.Errorf("%s on imagery: ratio %v, want > 1", c.Name(), r.Ratio)
		}
	}
}

func TestZipBeatsLZWOnImagery(t *testing.T) {
	// Table 4: Zip 2.38 vs LZW 2.14 on RGB satellite imagery.
	s := testScene(t, 2)
	data := s.Interleaved()
	zip := roundTrip(t, Zip{}, data)
	lzw := roundTrip(t, LZW{}, data)
	if zip.Ratio <= lzw.Ratio {
		t.Errorf("Zip (%v) should beat LZW (%v) on RGB imagery", zip.Ratio, lzw.Ratio)
	}
}

func TestPNGRoundTripRGB(t *testing.T) {
	s := testScene(t, 3)
	c := PNG{Width: s.Width, Height: s.Height, Format: RGB8}
	r := roundTrip(t, c, s.Interleaved())
	if r.Ratio <= 1 {
		t.Errorf("PNG ratio %v, want > 1", r.Ratio)
	}
}

func TestPNGRoundTripGray16(t *testing.T) {
	sar, err := eoimage.GenerateSAR(eoimage.SARConfig{Width: 96, Height: 96, Seed: 4, ShipCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := PNG{Width: 96, Height: 96, Format: Gray16}
	r := roundTrip(t, c, sar.Bytes())
	if r.Ratio <= 1 {
		t.Errorf("PNG Gray16 ratio %v, want > 1", r.Ratio)
	}
}

func TestPNGRejectsWrongSize(t *testing.T) {
	c := PNG{Width: 10, Height: 10, Format: RGB8}
	if _, err := c.Compress(make([]byte, 5)); err == nil {
		t.Error("wrong-size input accepted")
	}
	if _, err := c.Decompress([]byte("not a png")); err == nil {
		t.Error("garbage PNG accepted")
	}
}

func TestDWT53RoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		x := make([]int32, len(raw))
		orig := make([]int32, len(raw))
		for i, b := range raw {
			x[i] = int32(b)
			orig[i] = int32(b)
		}
		fwd53(x)
		inv53(x)
		for i := range x {
			if x[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDWT2DRoundTripOddSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range [][2]int{{16, 16}, {17, 13}, {31, 2}, {2, 31}, {5, 5}, {64, 3}} {
		w, h := dim[0], dim[1]
		plane := make([]int32, w*h)
		orig := make([]int32, w*h)
		for i := range plane {
			plane[i] = int32(rng.Intn(65536))
			orig[i] = plane[i]
		}
		sizes := dwt2D(plane, w, h, 3)
		idwt2D(plane, w, sizes)
		for i := range plane {
			if plane[i] != orig[i] {
				t.Fatalf("%dx%d: DWT round trip failed at %d", w, h, i)
			}
		}
	}
}

func TestSignMappingRoundTrip(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2, -2, 1 << 20, -(1 << 20)} {
		if got := mapToSigned(mapToUnsigned(v)); got != v {
			t.Errorf("map round trip %d → %d", v, got)
		}
	}
}

func TestRiceRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]uint32, len(raw))
		for i, v := range raw {
			vals[i] = uint32(v)
		}
		var w bitWriter
		riceEncode(&w, vals)
		r := bitReader{data: w.bytes()}
		back, err := riceDecode(&r, len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRiceHandlesHugeValues(t *testing.T) {
	vals := []uint32{0, 1, 1 << 31, 0xffffffff, 5, 1 << 30}
	var w bitWriter
	riceEncode(&w, vals)
	r := bitReader{data: w.bytes()}
	back, err := riceDecode(&r, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("huge value %d round-tripped to %d", vals[i], back[i])
		}
	}
}

func TestCCSDSRoundTripRGB(t *testing.T) {
	s := testScene(t, 5)
	c := CCSDS122{Width: s.Width, Height: s.Height, Format: RGB8}
	r := roundTrip(t, c, s.Interleaved())
	if r.Ratio <= 1 {
		t.Errorf("CCSDS ratio %v, want > 1 on smooth imagery", r.Ratio)
	}
}

func TestCCSDSRoundTripGray16(t *testing.T) {
	sar, err := eoimage.GenerateSAR(eoimage.SARConfig{Width: 96, Height: 96, Seed: 6, ShipCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := CCSDS122{Width: 96, Height: 96, Format: Gray16}
	roundTrip(t, c, sar.Bytes())
}

func TestCCSDSRejectsCorrupt(t *testing.T) {
	c := CCSDS122{Width: 8, Height: 8, Format: RGB8}
	comp, err := c.Compress(make([]byte, 8*8*3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(comp[:8]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := c.Decompress(comp[:20]); err == nil {
		t.Error("truncated payload accepted")
	}
	// Wrong geometry.
	other := CCSDS122{Width: 4, Height: 4, Format: RGB8}
	if _, err := other.Decompress(comp); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestWaveletRoundTripRGB(t *testing.T) {
	s := testScene(t, 7)
	c := Wavelet{Width: s.Width, Height: s.Height, Format: RGB8}
	r := roundTrip(t, c, s.Interleaved())
	if r.Ratio <= 1 {
		t.Errorf("wavelet ratio %v, want > 1", r.Ratio)
	}
}

func TestWaveletBeatsPlainZipOnSmoothImagery(t *testing.T) {
	// The decorrelating transform should beat raw Deflate on natural
	// imagery — the Table 4 JPEG2000-leads-RGB ordering.
	s, err := eoimage.Generate(eoimage.Config{
		Width: 256, Height: 256, Seed: 8, Kind: eoimage.Rural, CloudFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	data := s.Interleaved()
	wav := roundTrip(t, Wavelet{Width: 256, Height: 256, Format: RGB8}, data)
	zip := roundTrip(t, Zip{}, data)
	if wav.Ratio <= zip.Ratio {
		t.Errorf("wavelet (%v) should beat plain Zip (%v) on smooth imagery", wav.Ratio, zip.Ratio)
	}
}

func TestWaveletRejectsCorrupt(t *testing.T) {
	c := Wavelet{Width: 8, Height: 8, Format: RGB8}
	comp, err := c.Compress(make([]byte, 8*8*3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(comp[:6]); err == nil {
		t.Error("truncated header accepted")
	}
	corrupt := append([]byte{}, comp...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := c.Decompress(corrupt); err == nil {
		// Deflate may or may not detect the flip; a silent wrong answer
		// would be caught by Measure's byte comparison, so only a panic
		// would be a bug here.
		t.Log("tail corruption not detected by deflate (acceptable)")
	}
}

func TestMeasureSuiteOnRGB(t *testing.T) {
	s := testScene(t, 9)
	results, err := MeasureSuite(s.Width, s.Height, RGB8, s.Interleaved())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6 codecs", len(results))
	}
	for _, r := range results {
		if !r.RoundTripChecked {
			t.Errorf("%s: round trip not verified", r.Codec)
		}
		if r.Ratio <= 0 {
			t.Errorf("%s: ratio %v", r.Codec, r.Ratio)
		}
	}
}

func TestTable4RGBOrdering(t *testing.T) {
	// The paper's Table 4 shape for RGB: the wavelet coder leads, all
	// lossless ratios stay below ~4-5×, and RLE trails near 1×.
	s, err := eoimage.Generate(eoimage.Config{
		Width: 300, Height: 300, Seed: 10, Kind: eoimage.Urban, CloudFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	results, err := MeasureSuite(300, 300, RGB8, s.Interleaved())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Codec] = r.Ratio
	}
	if byName["JPEG2000*"] < byName["RLE"] {
		t.Errorf("wavelet (%v) should beat RLE (%v)", byName["JPEG2000*"], byName["RLE"])
	}
	if byName["RLE"] > 1.5 {
		t.Errorf("RLE on textured RGB = %v, want ≈1 (Table 4: 1.0)", byName["RLE"])
	}
	for name, ratio := range byName {
		if ratio > 6 {
			t.Errorf("%s lossless RGB ratio %v implausibly high (paper: < 4)", name, ratio)
		}
	}
}

func TestTable4SARRatiosDwarfRGB(t *testing.T) {
	// Table 4's headline: lossless SAR ratios are 1-3 orders of magnitude
	// higher than RGB because maritime scenes are mostly quiet/no-data.
	sar, err := eoimage.GenerateSAR(eoimage.SARConfig{
		Width: 300, Height: 300, Seed: 11, ShipCount: 6,
		NoDataBorder: 90, QuantStep: 64, SpeckleLooks: 32})
	if err != nil {
		t.Fatal(err)
	}
	sarResults, err := MeasureSuite(300, 300, Gray16, sar.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	scene := testScene(t, 12)
	rgbResults, err := MeasureSuite(scene.Width, scene.Height, RGB8, scene.Interleaved())
	if err != nil {
		t.Fatal(err)
	}
	get := func(rs []Result, name string) float64 {
		for _, r := range rs {
			if r.Codec == name {
				return r.Ratio
			}
		}
		t.Fatalf("missing codec %s", name)
		return 0
	}
	// Zip leads SAR compression by a wide margin (Table 4: 2436 vs 2.38).
	if zipSAR, zipRGB := get(sarResults, "Zip"), get(rgbResults, "Zip"); zipSAR < 10*zipRGB {
		t.Errorf("Zip on SAR (%v) should dwarf Zip on RGB (%v)", zipSAR, zipRGB)
	}
	// RLE benefits from flat regions on SAR but stays modest (Table 4: 64).
	if rleSAR, rleRGB := get(sarResults, "RLE"), get(rgbResults, "RLE"); rleSAR < 2*rleRGB {
		t.Errorf("RLE on SAR (%v) should beat RLE on RGB (%v)", rleSAR, rleRGB)
	}
	// CCSDS trails the dictionary coders on SAR (Table 4: 9.89 vs 2436).
	if ccsdsSAR, zipSAR := get(sarResults, "CCSDS"), get(sarResults, "Zip"); ccsdsSAR > zipSAR {
		t.Errorf("CCSDS on SAR (%v) should trail Zip (%v)", ccsdsSAR, zipSAR)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	var w bitWriter
	w.writeBits(0b1011, 4)
	w.writeUnary(5)
	w.writeBits(0xDEADBEEF, 32)
	r := bitReader{data: w.bytes()}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Errorf("bits = %b", v)
	}
	if q, _ := r.readUnary(100); q != 5 {
		t.Errorf("unary = %d", q)
	}
	if v, _ := r.readBits(32); v != 0xDEADBEEF {
		t.Errorf("word = %x", v)
	}
	if _, err := r.readBits(64); err == nil {
		t.Error("read past end accepted")
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, c := range []Codec{RLE{}, LZW{}, Zip{}} {
		r, err := Measure(c, nil)
		if err != nil {
			t.Errorf("%s on empty: %v", c.Name(), err)
			continue
		}
		if r.OriginalBytes != 0 {
			t.Errorf("%s: original bytes %d", c.Name(), r.OriginalBytes)
		}
	}
}
