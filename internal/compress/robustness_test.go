package compress

import (
	"bytes"
	"math/rand"
	"testing"

	"spacedc/internal/eoimage"
)

// TestDecompressorsNeverPanic feeds every codec truncated and bit-flipped
// versions of valid streams plus raw noise: each call must return
// (data, nil) only when the output is actually correct, or an error —
// never panic, never hang.
func TestDecompressorsNeverPanic(t *testing.T) {
	scene, err := eoimage.Generate(eoimage.Config{
		Width: 64, Height: 64, Seed: 3, Kind: eoimage.Rural})
	if err != nil {
		t.Fatal(err)
	}
	data := scene.Interleaved()
	rng := rand.New(rand.NewSource(9))

	for _, c := range Suite(64, 64, RGB8) {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		variants := make([][]byte, 0, 40)
		// Truncations.
		for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
			variants = append(variants, comp[:int(float64(len(comp))*frac)])
		}
		// Bit flips.
		for i := 0; i < 20; i++ {
			mut := append([]byte{}, comp...)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			variants = append(variants, mut)
		}
		// Raw noise.
		for i := 0; i < 10; i++ {
			noise := make([]byte, rng.Intn(256))
			rng.Read(noise)
			variants = append(variants, noise)
		}
		for vi, v := range variants {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s panicked on variant %d: %v", c.Name(), vi, r)
					}
				}()
				out, err := c.Decompress(v)
				if err == nil && bytes.Equal(v, comp) && !bytes.Equal(out, data) {
					t.Errorf("%s silently returned wrong data", c.Name())
				}
			}()
		}
	}
}

// TestCCSDS123NeverPanics runs the same torture on the hyperspectral coder.
func TestCCSDS123NeverPanics(t *testing.T) {
	cube, err := eoimage.GenerateHyperspectral(eoimage.HyperspectralConfig{
		Width: 16, Height: 16, Bands: 8, Seed: 1, BandCorrelation: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	codec := CCSDS123{Width: 16, Height: 16, Bands: 8}
	comp, err := codec.Compress(cube.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		mut := append([]byte{}, comp...)
		switch i % 3 {
		case 0:
			mut = mut[:rng.Intn(len(mut))]
		case 1:
			mut[rng.Intn(len(mut))] ^= 0xFF
		case 2:
			rng.Read(mut)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("CCSDS-123 panicked on mutation %d: %v", i, r)
				}
			}()
			_, _ = codec.Decompress(mut)
		}()
	}
}

// TestCompressorsHandleArbitraryInput checks the stream codecs compress
// and round-trip arbitrary (non-image) bytes.
func TestCompressorsHandleArbitraryInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inputs := [][]byte{
		nil,
		{0},
		bytes.Repeat([]byte{0xAA}, 10000),
		make([]byte, 4096),
	}
	random := make([]byte, 8192)
	rng.Read(random)
	inputs = append(inputs, random)

	for _, c := range []Codec{RLE{}, LZW{}, Zip{}} {
		for i, in := range inputs {
			comp, err := c.Compress(in)
			if err != nil {
				t.Errorf("%s input %d: %v", c.Name(), i, err)
				continue
			}
			back, err := c.Decompress(comp)
			if err != nil {
				t.Errorf("%s input %d decompress: %v", c.Name(), i, err)
				continue
			}
			if !bytes.Equal(back, in) {
				t.Errorf("%s input %d: round trip mismatch", c.Name(), i)
			}
		}
	}
}
