package compress

import (
	"math"
	"testing"

	"spacedc/internal/eoimage"
)

func lossyScene(t *testing.T) []byte {
	t.Helper()
	s, err := eoimage.Generate(eoimage.Config{
		Width: 256, Height: 256, Seed: 21, Kind: eoimage.Urban, CloudFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return s.Interleaved()
}

func TestLossyQuantOneIsLossless(t *testing.T) {
	data := lossyScene(t)
	r, err := MeasureLossy(LossyWavelet{Width: 256, Height: 256, Format: RGB8, Quant: 1}, data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.PSNRdB, 1) {
		t.Errorf("quant=1 PSNR = %v dB, want +Inf (lossless)", r.PSNRdB)
	}
}

func TestLossyRateQualityTradeoff(t *testing.T) {
	data := lossyScene(t)
	prevRatio, prevPSNR := 0.0, math.Inf(1)
	for _, q := range []int32{2, 8, 32, 128} {
		r, err := MeasureLossy(LossyWavelet{Width: 256, Height: 256, Format: RGB8, Quant: q}, data)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ratio <= prevRatio {
			t.Errorf("quant %d: ratio %v should beat quant-smaller %v", q, r.Ratio, prevRatio)
		}
		if r.PSNRdB >= prevPSNR {
			t.Errorf("quant %d: PSNR %v should trail quant-smaller %v", q, r.PSNRdB, prevPSNR)
		}
		prevRatio, prevPSNR = r.Ratio, r.PSNRdB
	}
}

func TestQuasiLosslessPaperRegime(t *testing.T) {
	// §4: quasi-lossless compression reaches only 10-20×. Find a
	// quantizer whose quality is still high (>35 dB — visually
	// transparent) and check its ratio lands in the paper's regime, well
	// below required ECRs.
	data := lossyScene(t)
	var best LossyResult
	for _, q := range []int32{8, 16, 24, 32, 48, 64} {
		r, err := MeasureLossy(LossyWavelet{Width: 256, Height: 256, Format: RGB8, Quant: q}, data)
		if err != nil {
			t.Fatal(err)
		}
		if r.PSNRdB >= 35 && r.Ratio > best.Ratio {
			best = r
		}
	}
	if best.Ratio == 0 {
		t.Fatal("no quantizer stayed above 35 dB")
	}
	if best.Ratio < 4 || best.Ratio > 40 {
		t.Errorf("quasi-lossless ratio at ≥35 dB = %v, want the paper's ~10-20× regime", best.Ratio)
	}
	// Even this lossy best case is orders of magnitude below the
	// thousands-scale ECRs fine resolutions demand.
	if best.Ratio > 100 {
		t.Error("lossy ratio implausibly closes the ECR gap")
	}
}

func TestPSNRValidation(t *testing.T) {
	if _, err := PSNR([]byte{1, 2}, []byte{1}, RGB8); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PSNR(nil, nil, RGB8); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := PSNR([]byte{1}, []byte{1}, PixelFormat(9)); err == nil {
		t.Error("unknown format accepted")
	}
	// Gray16 path.
	a := []byte{0x00, 0x10, 0x00, 0x20}
	b := []byte{0x00, 0x10, 0x00, 0x21}
	v, err := PSNR(a, b, Gray16)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || math.IsInf(v, 1) {
		t.Errorf("Gray16 PSNR = %v", v)
	}
}

func TestLossyGray16SAR(t *testing.T) {
	sar, err := eoimage.GenerateSAR(eoimage.SARConfig{
		Width: 128, Height: 128, Seed: 9, ShipCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasureLossy(LossyWavelet{Width: 128, Height: 128, Format: Gray16, Quant: 16}, sar.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio <= 1 || r.PSNRdB < 30 {
		t.Errorf("SAR lossy point: ratio %v, PSNR %v", r.Ratio, r.PSNRdB)
	}
}
