package compress

import (
	"bytes"
	"fmt"
)

// Result is one codec's measured performance on one input.
type Result struct {
	Codec            string
	OriginalBytes    int
	CompressedBytes  int
	Ratio            float64
	RoundTripChecked bool
}

// Measure compresses data with the codec, verifies a lossless round trip,
// and returns the compression ratio.
func Measure(c Codec, data []byte) (Result, error) {
	comp, err := c.Compress(data)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s: %w", c.Name(), err)
	}
	back, err := c.Decompress(comp)
	if err != nil {
		return Result{}, fmt.Errorf("compress: %s decompress: %w", c.Name(), err)
	}
	if !bytes.Equal(back, data) {
		return Result{}, fmt.Errorf("compress: %s: %w: round trip mismatch", c.Name(), ErrCorrupt)
	}
	r := Result{
		Codec:            c.Name(),
		OriginalBytes:    len(data),
		CompressedBytes:  len(comp),
		RoundTripChecked: true,
	}
	if len(comp) > 0 {
		r.Ratio = float64(len(data)) / float64(len(comp))
	}
	return r, nil
}

// Suite returns the Table 4 codec set for an image of the given geometry.
func Suite(width, height int, format PixelFormat) []Codec {
	return []Codec{
		Wavelet{Width: width, Height: height, Format: format},
		LZW{},
		Zip{},
		RLE{},
		PNG{Width: width, Height: height, Format: format},
		CCSDS122{Width: width, Height: height, Format: format},
	}
}

// MeasureSuite runs every Table 4 codec over data and returns the results
// in suite order.
func MeasureSuite(width, height int, format PixelFormat, data []byte) ([]Result, error) {
	var out []Result
	for _, c := range Suite(width, height, format) {
		r, err := Measure(c, data)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
