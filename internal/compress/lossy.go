package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"

	"math"
)

// LossyWavelet is the quasi-lossless coder of the paper's §4 ("high
// quality 'quasi-lossless' lossy compression results in compression
// ratios of only 10–20×"): the same multi-level 5/3 DWT, with high-band
// coefficients uniformly quantized before entropy coding. Quant = 1 is
// lossless; larger steps trade PSNR for ratio.
type LossyWavelet struct {
	Width, Height int
	Format        PixelFormat
	Levels        int
	// Quant is the uniform quantization step applied to detail
	// coefficients (the top-level LL band stays exact). 0 means 8.
	Quant int32
}

// Name implements the codec naming convention.
func (LossyWavelet) Name() string { return "quasi-lossless" }

// levels returns the decomposition depth.
func (c LossyWavelet) levels() int {
	if c.Levels == 0 {
		return 3
	}
	return c.Levels
}

// quant returns the effective step.
func (c LossyWavelet) quant() int32 {
	if c.Quant == 0 {
		return 8
	}
	return c.Quant
}

// llExtent returns the final LL band's width and height.
func (c LossyWavelet) llExtent() (int, int) {
	w, h := c.Width, c.Height
	for l := 0; l < c.levels() && w >= 2 && h >= 2; l++ {
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return w, h
}

// quantizePlane rounds detail coefficients to the step, leaving the LL
// band exact.
func (c LossyWavelet) quantizePlane(plane []int32) {
	llW, llH := c.llExtent()
	q := c.quant()
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			if x < llW && y < llH {
				continue
			}
			i := y*c.Width + x
			v := plane[i]
			// Round-to-nearest with symmetric handling of negatives.
			if v >= 0 {
				plane[i] = (v + q/2) / q * q
			} else {
				plane[i] = -((-v + q/2) / q * q)
			}
		}
	}
}

// Compress encodes with quantized detail bands.
func (c LossyWavelet) Compress(data []byte) ([]byte, error) {
	ps := planeSplitter{c.Width, c.Height, c.Format}
	planes, err := ps.split(data)
	if err != nil {
		return nil, err
	}
	var raw bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, plane := range planes {
		dwt2D(plane, c.Width, c.Height, c.levels())
		c.quantizePlane(plane)
		for _, v := range plane {
			n := binary.PutUvarint(tmp[:], uint64(mapToUnsigned(v)))
			raw.Write(tmp[:n])
		}
	}
	out := putU32(nil, uint32(c.Width))
	out = putU32(out, uint32(c.Height))
	out = putU32(out, uint32(c.levels()))
	out = putU32(out, uint32(len(planes)))
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return append(out, comp.Bytes()...), nil
}

// Decompress reconstructs the (lossy) image.
func (c LossyWavelet) Decompress(data []byte) ([]byte, error) {
	// The bitstream is identical in structure to the lossless Wavelet;
	// reuse its decoder.
	return Wavelet{Width: c.Width, Height: c.Height, Format: c.Format, Levels: c.levels()}.Decompress(data)
}

// LossyResult reports a lossy codec's rate/quality point.
type LossyResult struct {
	Codec           string
	Ratio           float64
	PSNRdB          float64
	CompressedBytes int
}

// MeasureLossy compresses, reconstructs, and reports ratio and PSNR.
func MeasureLossy(c LossyWavelet, data []byte) (LossyResult, error) {
	comp, err := c.Compress(data)
	if err != nil {
		return LossyResult{}, err
	}
	back, err := c.Decompress(comp)
	if err != nil {
		return LossyResult{}, err
	}
	if len(back) != len(data) {
		return LossyResult{}, fmt.Errorf("compress: lossy reconstruction size %d != %d", len(back), len(data))
	}
	psnr, err := PSNR(data, back, c.Format)
	if err != nil {
		return LossyResult{}, err
	}
	return LossyResult{
		Codec:           c.Name(),
		Ratio:           float64(len(data)) / float64(len(comp)),
		PSNRdB:          psnr,
		CompressedBytes: len(comp),
	}, nil
}

// PSNR computes the peak signal-to-noise ratio between two sample streams
// of the given pixel format. Identical streams return +Inf.
func PSNR(a, b []byte, format PixelFormat) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("compress: PSNR length mismatch %d vs %d", len(a), len(b))
	}
	var sumSq float64
	var n int
	var peak float64
	switch format {
	case RGB8:
		peak = 255
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			sumSq += d * d
		}
		n = len(a)
	case Gray16:
		peak = 65535
		for i := 0; i+1 < len(a); i += 2 {
			va := float64(uint16(a[i]) | uint16(a[i+1])<<8)
			vb := float64(uint16(b[i]) | uint16(b[i+1])<<8)
			d := va - vb
			sumSq += d * d
			n++
		}
	default:
		return 0, fmt.Errorf("compress: unknown pixel format %d", format)
	}
	if n == 0 {
		return 0, fmt.Errorf("compress: empty PSNR input")
	}
	mse := sumSq / float64(n)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(peak*peak/mse), nil
}
