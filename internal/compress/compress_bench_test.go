package compress

import (
	"testing"

	"spacedc/internal/eoimage"
)

// benchScene generates a reusable 256×256 urban scene.
func benchScene(b *testing.B) []byte {
	b.Helper()
	s, err := eoimage.Generate(eoimage.Config{
		Width: 256, Height: 256, Seed: 1, Kind: eoimage.Urban, CloudFraction: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	return s.Interleaved()
}

func benchCodec(b *testing.B, c Codec) {
	data := benchScene(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressRLE(b *testing.B) { benchCodec(b, RLE{}) }
func BenchmarkCompressLZW(b *testing.B) { benchCodec(b, LZW{}) }
func BenchmarkCompressZip(b *testing.B) { benchCodec(b, Zip{}) }
func BenchmarkCompressPNG(b *testing.B) { benchCodec(b, PNG{Width: 256, Height: 256, Format: RGB8}) }
func BenchmarkCompressCCSDS(b *testing.B) {
	benchCodec(b, CCSDS122{Width: 256, Height: 256, Format: RGB8})
}
func BenchmarkCompressWavelet(b *testing.B) {
	benchCodec(b, Wavelet{Width: 256, Height: 256, Format: RGB8})
}

func BenchmarkDWT2D(b *testing.B) {
	const w, h = 256, 256
	plane := make([]int32, w*h)
	for i := range plane {
		plane[i] = int32(i % 256)
	}
	work := make([]int32, len(plane))
	b.SetBytes(int64(4 * w * h))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, plane)
		sizes := dwt2D(work, w, h, 3)
		idwt2D(work, w, sizes)
	}
}

func BenchmarkRiceCode(b *testing.B) {
	vals := make([]uint32, 64*1024)
	for i := range vals {
		vals[i] = uint32(i % 97)
	}
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w bitWriter
		riceEncode(&w, vals)
		r := bitReader{data: w.bytes()}
		if _, err := riceDecode(&r, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}
