package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// planeSplitter converts between interleaved byte streams and per-channel
// int32 coefficient planes for the wavelet codecs.
type planeSplitter struct {
	Width, Height int
	Format        PixelFormat
}

// planeCount returns the number of channels.
func (p planeSplitter) planeCount() int {
	if p.Format == RGB8 {
		return 3
	}
	return 1
}

// split deinterleaves data into int32 planes.
func (p planeSplitter) split(data []byte) ([][]int32, error) {
	want := p.Width * p.Height * p.Format.BytesPerPixel()
	if len(data) != want {
		return nil, fmt.Errorf("compress: input %d bytes, want %d for %dx%d", len(data), want, p.Width, p.Height)
	}
	n := p.Width * p.Height
	switch p.Format {
	case RGB8:
		planes := [][]int32{make([]int32, n), make([]int32, n), make([]int32, n)}
		for i := 0; i < n; i++ {
			planes[0][i] = int32(data[3*i])
			planes[1][i] = int32(data[3*i+1])
			planes[2][i] = int32(data[3*i+2])
		}
		return planes, nil
	case Gray16:
		plane := make([]int32, n)
		for i := 0; i < n; i++ {
			plane[i] = int32(uint16(data[2*i]) | uint16(data[2*i+1])<<8)
		}
		return [][]int32{plane}, nil
	default:
		return nil, fmt.Errorf("compress: unknown pixel format %d", p.Format)
	}
}

// join re-interleaves planes into the original byte stream, clamping to
// the sample range — exact reconstructions are unaffected, but lossy
// reconstruction error near black must saturate rather than wrap (a -5
// that wrapped to 65531 would be a catastrophic pixel error).
func (p planeSplitter) join(planes [][]int32) []byte {
	n := p.Width * p.Height
	out := make([]byte, n*p.Format.BytesPerPixel())
	switch p.Format {
	case RGB8:
		for i := 0; i < n; i++ {
			out[3*i] = clampByte(planes[0][i])
			out[3*i+1] = clampByte(planes[1][i])
			out[3*i+2] = clampByte(planes[2][i])
		}
	case Gray16:
		for i := 0; i < n; i++ {
			v := clampU16(planes[0][i])
			out[2*i] = byte(v)
			out[2*i+1] = byte(v >> 8)
		}
	}
	return out
}

// clampByte saturates to [0, 255].
func clampByte(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// clampU16 saturates to [0, 65535].
func clampU16(v int32) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

// CCSDS122 is a CCSDS-122.0-style coder: a reversible integer 5/3 DWT
// followed by block-adaptive Rice coding of the mapped coefficients. Like
// the real standard it excels on smooth radiometry and cannot exploit the
// long exact repeats that dictionary coders feast on — which is why Table 4
// shows it trailing Zip on quiet SAR scenes.
type CCSDS122 struct {
	Width, Height int
	Format        PixelFormat
	// Levels of DWT decomposition; 0 means the standard's 3.
	Levels int
}

// Name implements Codec.
func (CCSDS122) Name() string { return "CCSDS" }

// levels returns the effective decomposition depth.
func (c CCSDS122) levels() int {
	if c.Levels == 0 {
		return 3
	}
	return c.Levels
}

// Compress implements Codec.
func (c CCSDS122) Compress(data []byte) ([]byte, error) {
	ps := planeSplitter{c.Width, c.Height, c.Format}
	planes, err := ps.split(data)
	if err != nil {
		return nil, err
	}
	out := putU32(nil, uint32(c.Width))
	out = putU32(out, uint32(c.Height))
	out = putU32(out, uint32(c.levels()))
	out = putU32(out, uint32(len(planes)))
	for _, plane := range planes {
		dwt2D(plane, c.Width, c.Height, c.levels())
		mapped := make([]uint32, len(plane))
		for i, v := range plane {
			mapped[i] = mapToUnsigned(v)
		}
		var w bitWriter
		riceEncode(&w, mapped)
		payload := w.bytes()
		out = putU32(out, uint32(len(payload)))
		out = append(out, payload...)
	}
	return out, nil
}

// Decompress implements Codec.
func (c CCSDS122) Decompress(data []byte) ([]byte, error) {
	w32, off, err := getU32(data, 0)
	if err != nil {
		return nil, err
	}
	h32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	lv32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	np32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	w, h, lv, np := int(w32), int(h32), int(lv32), int(np32)
	if w != c.Width || h != c.Height || np != (planeSplitter{w, h, c.Format}).planeCount() {
		return nil, ErrCorrupt
	}
	// Recompute the per-level sizes the forward pass produced.
	sizes := levelSizes(w, h, lv)

	planes := make([][]int32, np)
	for pi := 0; pi < np; pi++ {
		var plen uint32
		plen, off, err = getU32(data, off)
		if err != nil {
			return nil, err
		}
		if off+int(plen) > len(data) {
			return nil, ErrCorrupt
		}
		r := bitReader{data: data[off : off+int(plen)]}
		off += int(plen)
		mapped, err := riceDecode(&r, w*h)
		if err != nil {
			return nil, err
		}
		plane := make([]int32, w*h)
		for i, u := range mapped {
			plane[i] = mapToSigned(u)
		}
		idwt2D(plane, w, sizes)
		planes[pi] = plane
	}
	return planeSplitter{w, h, c.Format}.join(planes), nil
}

// levelSizes reproduces the (w, h) halving sequence dwt2D records.
func levelSizes(w, h, levels int) [][2]int {
	var sizes [][2]int
	cw, ch := w, h
	for l := 0; l < levels && cw >= 2 && ch >= 2; l++ {
		sizes = append(sizes, [2]int{cw, ch})
		cw = (cw + 1) / 2
		ch = (ch + 1) / 2
	}
	return sizes
}

// Wavelet is the JPEG2000 stand-in: the same reversible multi-level 5/3
// DWT, but with the mapped coefficients varint-serialized and Deflate
// entropy-coded, capturing both the decorrelation of the transform and the
// dictionary redundancy Deflate finds. On natural imagery it leads the
// lossless field, like JPEG2000 does in Table 4.
type Wavelet struct {
	Width, Height int
	Format        PixelFormat
	Levels        int
}

// Name implements Codec.
func (Wavelet) Name() string { return "JPEG2000*" }

// levels returns the effective decomposition depth.
func (c Wavelet) levels() int {
	if c.Levels == 0 {
		return 3
	}
	return c.Levels
}

// Compress implements Codec.
func (c Wavelet) Compress(data []byte) ([]byte, error) {
	ps := planeSplitter{c.Width, c.Height, c.Format}
	planes, err := ps.split(data)
	if err != nil {
		return nil, err
	}
	var raw bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, plane := range planes {
		dwt2D(plane, c.Width, c.Height, c.levels())
		for _, v := range plane {
			n := binary.PutUvarint(tmp[:], uint64(mapToUnsigned(v)))
			raw.Write(tmp[:n])
		}
	}
	out := putU32(nil, uint32(c.Width))
	out = putU32(out, uint32(c.Height))
	out = putU32(out, uint32(c.levels()))
	out = putU32(out, uint32(len(planes)))
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return append(out, comp.Bytes()...), nil
}

// Decompress implements Codec.
func (c Wavelet) Decompress(data []byte) ([]byte, error) {
	w32, off, err := getU32(data, 0)
	if err != nil {
		return nil, err
	}
	h32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	lv32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	np32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	w, h, lv, np := int(w32), int(h32), int(lv32), int(np32)
	if w != c.Width || h != c.Height {
		return nil, ErrCorrupt
	}
	fr := flate.NewReader(bytes.NewReader(data[off:]))
	defer fr.Close()
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	sizes := levelSizes(w, h, lv)
	rd := bytes.NewReader(raw)
	planes := make([][]int32, np)
	for pi := 0; pi < np; pi++ {
		plane := make([]int32, w*h)
		for i := range plane {
			u, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			plane[i] = mapToSigned(uint32(u))
		}
		idwt2D(plane, w, sizes)
		planes[pi] = plane
	}
	return planeSplitter{w, h, c.Format}.join(planes), nil
}
