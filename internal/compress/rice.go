package compress

import "encoding/binary"

// Rice (Golomb power-of-two) entropy coder with per-block adaptive k, the
// entropy stage used by CCSDS lossless standards. Values are coded as
// quotient (unary) + remainder (k bits); blocks where unary quotients would
// explode fall back to verbatim 32-bit coding.

const (
	riceBlock      = 64 // values per adaptive block
	riceMaxK       = 30
	riceEscapeK    = 31 // k value marking a verbatim block
	riceUnaryLimit = 1 << 16
)

// riceEncode writes vals to the bit stream with adaptive per-block k.
func riceEncode(w *bitWriter, vals []uint32) {
	for start := 0; start < len(vals); start += riceBlock {
		end := start + riceBlock
		if end > len(vals) {
			end = len(vals)
		}
		block := vals[start:end]
		k, cost := bestRiceK(block)
		if cost >= 32*len(block) { // verbatim is cheaper
			w.writeBits(uint64(riceEscapeK), 5)
			for _, v := range block {
				w.writeBits(uint64(v), 32)
			}
			continue
		}
		w.writeBits(uint64(k), 5)
		for _, v := range block {
			q := v >> k
			w.writeUnary(q)
			w.writeBits(uint64(v), uint(k))
		}
	}
}

// bestRiceK returns the k minimizing the coded size of the block and that
// size in bits.
func bestRiceK(block []uint32) (uint, int) {
	bestK, bestCost := uint(0), int(^uint(0)>>1)
	for k := uint(0); k <= riceMaxK; k++ {
		cost := 0
		for _, v := range block {
			cost += int(v>>k) + 1 + int(k)
			if cost >= bestCost {
				break
			}
		}
		if cost < bestCost {
			bestK, bestCost = k, cost
		}
		// Once k exceeds log2(max), cost only grows.
		if cost == len(block)*(int(k)+1) {
			break
		}
	}
	return bestK, bestCost
}

// riceDecode reads n values written by riceEncode.
func riceDecode(r *bitReader, n int) ([]uint32, error) {
	out := make([]uint32, 0, n)
	for len(out) < n {
		kRaw, err := r.readBits(5)
		if err != nil {
			return nil, err
		}
		k := uint(kRaw)
		count := riceBlock
		if remaining := n - len(out); remaining < count {
			count = remaining
		}
		if k == riceEscapeK {
			for i := 0; i < count; i++ {
				v, err := r.readBits(32)
				if err != nil {
					return nil, err
				}
				out = append(out, uint32(v))
			}
			continue
		}
		if k > riceMaxK {
			return nil, ErrCorrupt
		}
		for i := 0; i < count; i++ {
			q, err := r.readUnary(riceUnaryLimit)
			if err != nil {
				return nil, err
			}
			rem, err := r.readBits(k)
			if err != nil {
				return nil, err
			}
			out = append(out, q<<k|uint32(rem))
		}
	}
	return out, nil
}

// putU32 appends v little-endian.
func putU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// getU32 reads a little-endian uint32 at offset, returning the value and
// the next offset.
func getU32(src []byte, off int) (uint32, int, error) {
	if off+4 > len(src) {
		return 0, 0, ErrCorrupt
	}
	return binary.LittleEndian.Uint32(src[off:]), off + 4, nil
}
