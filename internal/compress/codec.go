// Package compress implements the lossless codec suite the paper evaluates
// in Table 4: run-length encoding, LZW, Deflate (the "Zip" entry), PNG, a
// CCSDS-122-style wavelet+Rice coder, and a multi-level wavelet+entropy
// coder standing in for JPEG2000. All codecs are lossless; the measurement
// harness verifies round trips and reports compression ratios.
package compress

import (
	"bytes"
	"compress/flate"
	"compress/lzw"
	"errors"
	"fmt"
	"image"
	"image/png"
	"io"
)

// Codec compresses and decompresses byte streams losslessly.
type Codec interface {
	// Name identifies the codec in reports ("Zip", "PNG", …).
	Name() string
	// Compress returns the encoded form of data.
	Compress(data []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(data []byte) ([]byte, error)
}

// ErrCorrupt is returned when encoded data cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt stream")

// RLE is a PackBits-style byte run-length coder: literal runs are emitted
// as (n-1, bytes...) with n ≤ 128; repeats of ≥ 3 as (257-n, byte) with
// n ≤ 128. It is the weakest coder on textured imagery (ratio ≈ 1) and a
// strong one on flat no-data regions, exactly as Table 4 shows.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "RLE" }

// Compress implements Codec.
func (RLE) Compress(data []byte) ([]byte, error) {
	var out bytes.Buffer
	i := 0
	for i < len(data) {
		// Find run length of identical bytes.
		run := 1
		for i+run < len(data) && data[i+run] == data[i] && run < 128 {
			run++
		}
		if run >= 3 {
			out.WriteByte(byte(257 - run))
			out.WriteByte(data[i])
			i += run
			continue
		}
		// Literal run: scan until a ≥3 repeat begins or 128 bytes.
		start := i
		i += run
		for i < len(data) && i-start < 128 {
			r := 1
			for i+r < len(data) && data[i+r] == data[i] && r < 3 {
				r++
			}
			if r >= 3 {
				break
			}
			i += r
			if i-start > 128 {
				i = start + 128
				break
			}
		}
		n := i - start
		out.WriteByte(byte(n - 1))
		out.Write(data[start:i])
	}
	return out.Bytes(), nil
}

// Decompress implements Codec.
func (RLE) Decompress(data []byte) ([]byte, error) {
	var out bytes.Buffer
	i := 0
	for i < len(data) {
		ctrl := data[i]
		i++
		if ctrl < 128 { // literal run of ctrl+1 bytes
			n := int(ctrl) + 1
			if i+n > len(data) {
				return nil, ErrCorrupt
			}
			out.Write(data[i : i+n])
			i += n
			continue
		}
		// Repeat run of 257-ctrl copies.
		if i >= len(data) {
			return nil, ErrCorrupt
		}
		n := 257 - int(ctrl)
		for j := 0; j < n; j++ {
			out.WriteByte(data[i])
		}
		i++
	}
	return out.Bytes(), nil
}

// LZW wraps the stdlib LZW coder (the algorithm behind GIF/TIFF-LZW and
// Unix compress).
type LZW struct{}

// Name implements Codec.
func (LZW) Name() string { return "LZW" }

// Compress implements Codec.
func (LZW) Compress(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w := lzw.NewWriter(&out, lzw.MSB, 8)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decompress implements Codec.
func (LZW) Decompress(data []byte) ([]byte, error) {
	r := lzw.NewReader(bytes.NewReader(data), lzw.MSB, 8)
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Zip is the Deflate coder used by zip/gzip at maximum compression.
type Zip struct{}

// Name implements Codec.
func (Zip) Name() string { return "Zip" }

// Compress implements Codec.
func (Zip) Compress(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decompress implements Codec.
func (Zip) Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// PixelFormat tells image-structured codecs how to interpret a byte stream.
type PixelFormat int

// Pixel formats.
const (
	// RGB8 is interleaved 8-bit RGB.
	RGB8 PixelFormat = iota
	// Gray16 is little-endian 16-bit grayscale (SAR products).
	Gray16
)

// BytesPerPixel returns the stride of one pixel.
func (f PixelFormat) BytesPerPixel() int {
	switch f {
	case RGB8:
		return 3
	case Gray16:
		return 2
	default:
		return 0
	}
}

// PNG encodes the stream as a PNG image (filter + Deflate). It needs the
// image geometry to reconstruct rows.
type PNG struct {
	Width, Height int
	Format        PixelFormat
}

// Name implements Codec.
func (PNG) Name() string { return "PNG" }

// Compress implements Codec.
func (p PNG) Compress(data []byte) ([]byte, error) {
	img, err := p.toImage(data)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	enc := png.Encoder{CompressionLevel: png.BestCompression}
	if err := enc.Encode(&out, img); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decompress implements Codec.
func (p PNG) Decompress(data []byte) ([]byte, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return p.fromImage(img)
}

// toImage wraps raw bytes in the configured image type.
func (p PNG) toImage(data []byte) (image.Image, error) {
	want := p.Width * p.Height * p.Format.BytesPerPixel()
	if len(data) != want {
		return nil, fmt.Errorf("compress: PNG input %d bytes, want %d", len(data), want)
	}
	switch p.Format {
	case RGB8:
		img := image.NewNRGBA(image.Rect(0, 0, p.Width, p.Height))
		for i := 0; i < p.Width*p.Height; i++ {
			img.Pix[4*i+0] = data[3*i+0]
			img.Pix[4*i+1] = data[3*i+1]
			img.Pix[4*i+2] = data[3*i+2]
			img.Pix[4*i+3] = 255
		}
		return img, nil
	case Gray16:
		img := image.NewGray16(image.Rect(0, 0, p.Width, p.Height))
		for i := 0; i < p.Width*p.Height; i++ {
			v := uint16(data[2*i]) | uint16(data[2*i+1])<<8
			img.Pix[2*i] = byte(v >> 8) // Gray16 stores big-endian
			img.Pix[2*i+1] = byte(v)
		}
		return img, nil
	default:
		return nil, fmt.Errorf("compress: unknown pixel format %d", p.Format)
	}
}

// fromImage recovers the raw byte stream from a decoded image.
func (p PNG) fromImage(img image.Image) ([]byte, error) {
	b := img.Bounds()
	if b.Dx() != p.Width || b.Dy() != p.Height {
		return nil, fmt.Errorf("%w: decoded size %dx%d", ErrCorrupt, b.Dx(), b.Dy())
	}
	out := make([]byte, 0, p.Width*p.Height*p.Format.BytesPerPixel())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			switch p.Format {
			case RGB8:
				out = append(out, byte(r>>8), byte(g>>8), byte(bl>>8))
			case Gray16:
				out = append(out, byte(r), byte(r>>8))
			}
		}
	}
	return out, nil
}
