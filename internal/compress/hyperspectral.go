package compress

import (
	"fmt"
	"math"
)

// CCSDS123 is a CCSDS-123.0-style lossless coder for hyperspectral cubes
// (the standard the paper cites for multispectral/hyperspectral satellite
// image compression): each sample is predicted from its spatial neighbors
// in the same band and the co-located sample in the previous band, and the
// mapped prediction residuals are Rice-coded. Real sensor cubes have
// band-to-band correlations above 0.95, which this predictor converts into
// small residuals and large ratios.
type CCSDS123 struct {
	Width, Height, Bands int
}

// Name implements Codec.
func (CCSDS123) Name() string { return "CCSDS-123" }

// samplesLen returns the expected sample count.
func (c CCSDS123) samplesLen() int { return c.Width * c.Height * c.Bands }

// validate checks the geometry.
func (c CCSDS123) validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Bands <= 0 {
		return fmt.Errorf("compress: bad cube geometry %dx%dx%d", c.Width, c.Height, c.Bands)
	}
	return nil
}

// decode16 converts little-endian bytes to samples.
func (c CCSDS123) decode16(data []byte) ([]int32, error) {
	want := 2 * c.samplesLen()
	if len(data) != want {
		return nil, fmt.Errorf("compress: cube input %d bytes, want %d", len(data), want)
	}
	out := make([]int32, c.samplesLen())
	for i := range out {
		out[i] = int32(uint16(data[2*i]) | uint16(data[2*i+1])<<8)
	}
	return out, nil
}

// predict returns the prediction for sample (b, y, x) given the
// reconstructed cube so far: the mean of the west and north neighbors in
// the current band plus the spectral delta of the same neighborhood in
// the previous band (a simplified version of the standard's adaptive
// weights, fixed at the value that is optimal for highly band-correlated
// data).
func (c CCSDS123) predict(cube []int32, b, y, x int) int32 {
	n := c.Width * c.Height
	idx := func(b, y, x int) int32 { return cube[b*n+y*c.Width+x] }

	// Spatial prediction within the band.
	var spatial int32
	switch {
	case x > 0 && y > 0:
		spatial = (idx(b, y, x-1) + idx(b, y-1, x)) / 2
	case x > 0:
		spatial = idx(b, y, x-1)
	case y > 0:
		spatial = idx(b, y-1, x)
	default:
		spatial = 0
	}
	if b == 0 {
		return spatial
	}
	// Spectral correction: assume the current band moves like the
	// previous band did over the same neighborhood.
	prevHere := idx(b-1, y, x)
	var prevSpatial int32
	switch {
	case x > 0 && y > 0:
		prevSpatial = (idx(b-1, y, x-1) + idx(b-1, y-1, x)) / 2
	case x > 0:
		prevSpatial = idx(b-1, y, x-1)
	case y > 0:
		prevSpatial = idx(b-1, y-1, x)
	default:
		// First sample of a band: predict directly from the previous
		// band's first sample.
		return prevHere
	}
	return spatial + (prevHere - prevSpatial)
}

// Compress implements Codec over little-endian 16-bit band-sequential
// cube bytes.
func (c CCSDS123) Compress(data []byte) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	cube, err := c.decode16(data)
	if err != nil {
		return nil, err
	}
	mapped := make([]uint32, len(cube))
	n := c.Width * c.Height
	for b := 0; b < c.Bands; b++ {
		for y := 0; y < c.Height; y++ {
			for x := 0; x < c.Width; x++ {
				i := b*n + y*c.Width + x
				residual := cube[i] - c.predict(cube, b, y, x)
				mapped[i] = mapToUnsigned(residual)
			}
		}
	}
	var w bitWriter
	riceEncode(&w, mapped)
	payload := w.bytes()

	out := putU32(nil, uint32(c.Width))
	out = putU32(out, uint32(c.Height))
	out = putU32(out, uint32(c.Bands))
	out = putU32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// Decompress implements Codec.
func (c CCSDS123) Decompress(data []byte) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	w32, off, err := getU32(data, 0)
	if err != nil {
		return nil, err
	}
	h32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	b32, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	if int(w32) != c.Width || int(h32) != c.Height || int(b32) != c.Bands {
		return nil, ErrCorrupt
	}
	plen, off, err := getU32(data, off)
	if err != nil {
		return nil, err
	}
	if off+int(plen) > len(data) {
		return nil, ErrCorrupt
	}
	r := bitReader{data: data[off : off+int(plen)]}
	mapped, err := riceDecode(&r, c.samplesLen())
	if err != nil {
		return nil, err
	}

	cube := make([]int32, c.samplesLen())
	n := c.Width * c.Height
	for b := 0; b < c.Bands; b++ {
		for y := 0; y < c.Height; y++ {
			for x := 0; x < c.Width; x++ {
				i := b*n + y*c.Width + x
				residual := mapToSigned(mapped[i])
				v := c.predict(cube, b, y, x) + residual
				if v < math.MinInt16 || v > math.MaxUint16 {
					return nil, ErrCorrupt
				}
				cube[i] = v
			}
		}
	}
	out := make([]byte, 2*len(cube))
	for i, v := range cube {
		u := uint16(v)
		out[2*i] = byte(u)
		out[2*i+1] = byte(u >> 8)
	}
	return out, nil
}
