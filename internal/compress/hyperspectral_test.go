package compress

import (
	"testing"

	"spacedc/internal/eoimage"
)

func benchCube(t testing.TB, corr float64) ([]byte, CCSDS123) {
	t.Helper()
	cfg := eoimage.HyperspectralConfig{
		Width: 64, Height: 64, Bands: 32, Seed: 5, BandCorrelation: corr}
	cube, err := eoimage.GenerateHyperspectral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cube.Bytes(), CCSDS123{Width: cfg.Width, Height: cfg.Height, Bands: cfg.Bands}
}

func TestCCSDS123RoundTrip(t *testing.T) {
	data, codec := benchCube(t, 0.95)
	r, err := Measure(codec, data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio <= 1.5 {
		t.Errorf("hyperspectral predictive coder ratio %v, want > 1.5 on correlated cube", r.Ratio)
	}
}

func TestCCSDS123ExploitsBandCorrelation(t *testing.T) {
	// The spectral predictor's whole point: correlated cubes compress
	// better than decorrelated ones.
	hi, codec := benchCube(t, 0.98)
	lo, _ := benchCube(t, 0.1)
	rHi, err := Measure(codec, hi)
	if err != nil {
		t.Fatal(err)
	}
	rLo, err := Measure(codec, lo)
	if err != nil {
		t.Fatal(err)
	}
	if rHi.Ratio <= rLo.Ratio {
		t.Errorf("correlated cube (%v) should beat decorrelated (%v)", rHi.Ratio, rLo.Ratio)
	}
}

func TestCCSDS123BeatsGenericCodersOnCubes(t *testing.T) {
	// Versus byte-stream Deflate, the spectral predictor should win on
	// realistic sensor statistics — the reason CCSDS-123 exists.
	data, codec := benchCube(t, 0.97)
	spec, err := Measure(codec, data)
	if err != nil {
		t.Fatal(err)
	}
	zip, err := Measure(Zip{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Ratio <= zip.Ratio {
		t.Errorf("CCSDS-123 (%v) should beat Zip (%v) on a correlated cube", spec.Ratio, zip.Ratio)
	}
}

func TestCCSDS123Validation(t *testing.T) {
	bad := CCSDS123{Width: 0, Height: 4, Bands: 4}
	if _, err := bad.Compress(nil); err == nil {
		t.Error("bad geometry accepted")
	}
	codec := CCSDS123{Width: 4, Height: 4, Bands: 2}
	if _, err := codec.Compress(make([]byte, 7)); err == nil {
		t.Error("wrong-size input accepted")
	}
	comp, err := codec.Compress(make([]byte, 2*4*4*2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decompress(comp[:6]); err == nil {
		t.Error("truncated header accepted")
	}
	other := CCSDS123{Width: 8, Height: 8, Bands: 2}
	if _, err := other.Decompress(comp); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestCCSDS123ConstantCube(t *testing.T) {
	// A flat cube predicts perfectly after the first sample: huge ratio.
	codec := CCSDS123{Width: 32, Height: 32, Bands: 8}
	data := make([]byte, 2*32*32*8)
	for i := 0; i < len(data); i += 2 {
		data[i] = 0xE8
		data[i+1] = 0x03 // 1000 everywhere
	}
	r, err := Measure(codec, data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 10 {
		t.Errorf("constant cube ratio = %v, want large", r.Ratio)
	}
}

func BenchmarkCCSDS123(b *testing.B) {
	data, codec := benchCube(b, 0.95)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}
