package discard

import (
	"math"
	"testing"

	"spacedc/internal/eoimage"
)

func scene(t *testing.T, cfg eoimage.Config) *eoimage.Scene {
	t.Helper()
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 128, 128
	}
	s, err := eoimage.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable3Values(t *testing.T) {
	rows := Table3()
	if len(rows) != 6 {
		t.Fatalf("Table 3 has %d rows, want 6", len(rows))
	}
	wantRates := map[string]float64{
		"None": 0, "Night": 0.5, "Ocean": 0.7,
		"Uninhabited": 0.9, "Non-Built-Up": 0.98, "Cloudy": 0.67,
	}
	// The paper's published ECRs: 1, 2, 3.4, 10, 50, 3.
	wantECR := map[string]float64{
		"None": 1, "Night": 2, "Ocean": 3.4,
		"Uninhabited": 10, "Non-Built-Up": 50, "Cloudy": 3,
	}
	for _, c := range rows {
		if err := c.ValidateRate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Rate != wantRates[c.Name] {
			t.Errorf("%s rate = %v, want %v", c.Name, c.Rate, wantRates[c.Name])
		}
		if got := c.ECR(); math.Abs(got-wantECR[c.Name])/wantECR[c.Name] > 0.05 {
			t.Errorf("%s ECR = %v, want ≈%v", c.Name, got, wantECR[c.Name])
		}
	}
}

func TestECRInfinity(t *testing.T) {
	if !math.IsInf(Criterion{Rate: 1}.ECR(), 1) {
		t.Error("100% discard should have infinite ECR")
	}
}

func TestCombineIndependent(t *testing.T) {
	// Night (0.5) + Non-Built-Up (0.98): keep 0.5×0.02 = 0.01 → rate 0.99,
	// ECR 100 — the paper's "≤ 4 × 100 = 400" best case combined with
	// lossless compression's ≤4×.
	c := CombineIndependent(Night, NonBuiltUp)
	if math.Abs(c.Rate-0.99) > 1e-12 {
		t.Errorf("combined rate = %v, want 0.99", c.Rate)
	}
	if math.Abs(c.ECR()-100) > 1e-9 {
		t.Errorf("combined ECR = %v, want 100", c.ECR())
	}
	if c.Name != "Night+Non-Built-Up" {
		t.Errorf("combined name = %q", c.Name)
	}
	// Combining with None is a no-op.
	same := CombineIndependent(None, Ocean)
	if math.Abs(same.Rate-Ocean.Rate) > 1e-12 {
		t.Errorf("None+Ocean rate = %v", same.Rate)
	}
	// Empty combination keeps everything.
	if got := CombineIndependent(); got.Rate != 0 {
		t.Errorf("empty combination rate = %v", got.Rate)
	}
}

func TestBestCaseECRBound(t *testing.T) {
	// Paper §4: best-case combined compression (≤4×) and early discard
	// (≤100× via night + non-built-up) is ≤400 — still orders of
	// magnitude below the required ECRs for fine targets.
	combined := CombineIndependent(Night, NonBuiltUp).ECR() * 4
	if combined > 400.5 {
		t.Errorf("best-case ECR = %v, paper says ≤400", combined)
	}
	if combined < 399 {
		t.Errorf("best-case ECR = %v, want ≈400", combined)
	}
}

func TestNightClassifier(t *testing.T) {
	day := scene(t, eoimage.Config{Seed: 1, Kind: eoimage.Rural})
	night := scene(t, eoimage.Config{Seed: 1, Kind: eoimage.Rural, Night: true})
	nc := NightClassifier{}
	if nc.Discard(day) {
		t.Error("day scene discarded as night")
	}
	if !nc.Discard(night) {
		t.Error("night scene kept")
	}
}

func TestOceanClassifier(t *testing.T) {
	ocean := scene(t, eoimage.Config{Seed: 2, Kind: eoimage.Ocean})
	land := scene(t, eoimage.Config{Seed: 2, Kind: eoimage.Urban})
	oc := OceanClassifier{}
	if !oc.Discard(ocean) {
		t.Error("ocean scene kept")
	}
	if oc.Discard(land) {
		t.Error("urban scene discarded as ocean")
	}
}

func TestCloudClassifier(t *testing.T) {
	overcast := scene(t, eoimage.Config{Seed: 3, Kind: eoimage.Rural, CloudFraction: 0.9})
	clear := scene(t, eoimage.Config{Seed: 3, Kind: eoimage.Rural, CloudFraction: 0.1})
	cc := CloudClassifier{}
	if !cc.Discard(overcast) {
		t.Error("overcast scene kept")
	}
	if cc.Discard(clear) {
		t.Error("clear scene discarded as cloudy")
	}
}

func TestBuiltUpClassifier(t *testing.T) {
	urban := scene(t, eoimage.Config{Seed: 4, Kind: eoimage.Urban})
	rural := scene(t, eoimage.Config{Seed: 4, Kind: eoimage.Rural})
	ocean := scene(t, eoimage.Config{Seed: 4, Kind: eoimage.Ocean})
	bc := BuiltUpClassifier{}
	if bc.Discard(urban) {
		t.Error("urban scene discarded by built-up filter")
	}
	if !bc.Discard(rural) {
		t.Error("rural scene kept by built-up filter")
	}
	if !bc.Discard(ocean) {
		t.Error("ocean scene kept by built-up filter")
	}
}

func TestPipelineAnyVote(t *testing.T) {
	p := Pipeline{Classifiers: []Classifier{NightClassifier{}, OceanClassifier{}}}
	dayLand := scene(t, eoimage.Config{Seed: 5, Kind: eoimage.Urban})
	nightLand := scene(t, eoimage.Config{Seed: 5, Kind: eoimage.Urban, Night: true})
	dayOcean := scene(t, eoimage.Config{Seed: 5, Kind: eoimage.Ocean})
	if p.Discard(dayLand) {
		t.Error("day land discarded")
	}
	if !p.Discard(nightLand) || !p.Discard(dayOcean) {
		t.Error("pipeline should discard when any rule fires")
	}
}

func TestPipelineEvaluateRate(t *testing.T) {
	// A mixed batch: 2 ocean, 1 night, 2 day-land → 60% discard with the
	// night+ocean pipeline.
	frames := []*eoimage.Scene{
		scene(t, eoimage.Config{Seed: 10, Kind: eoimage.Ocean}),
		scene(t, eoimage.Config{Seed: 11, Kind: eoimage.Ocean}),
		scene(t, eoimage.Config{Seed: 12, Kind: eoimage.Urban, Night: true}),
		scene(t, eoimage.Config{Seed: 13, Kind: eoimage.Urban}),
		scene(t, eoimage.Config{Seed: 14, Kind: eoimage.Urban}),
	}
	p := Pipeline{Classifiers: []Classifier{NightClassifier{}, OceanClassifier{}}}
	st := p.Evaluate(frames)
	if st.Frames != 5 || st.Discarded != 3 {
		t.Fatalf("stats = %+v, want 3/5 discarded", st)
	}
	if math.Abs(st.Rate()-0.6) > 1e-12 {
		t.Errorf("rate = %v", st.Rate())
	}
	if math.Abs(st.ECR()-2.5) > 1e-12 {
		t.Errorf("ECR = %v", st.ECR())
	}
}

func TestStatsDegenerate(t *testing.T) {
	if (Stats{}).Rate() != 0 {
		t.Error("empty stats rate should be 0")
	}
	if !math.IsInf(Stats{Frames: 3, Discarded: 3}.ECR(), 1) {
		t.Error("all-discarded ECR should be infinite")
	}
}

func TestClassifierNames(t *testing.T) {
	names := map[string]Classifier{
		"night":    NightClassifier{},
		"ocean":    OceanClassifier{},
		"cloud":    CloudClassifier{},
		"built-up": BuiltUpClassifier{},
	}
	for want, c := range names {
		if c.Name() != want {
			t.Errorf("classifier name %q, want %q", c.Name(), want)
		}
	}
}

func TestValidateRate(t *testing.T) {
	if err := (Criterion{Rate: -0.1}).ValidateRate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Criterion{Rate: 1.1}).ValidateRate(); err == nil {
		t.Error("rate > 1 accepted")
	}
}
