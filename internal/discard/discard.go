// Package discard models early discard — dropping frames on board before
// they consume downlink or compute. It carries the paper's Table 3 discard
// rates and effective compression ratios, the algebra for combining
// criteria, and working image classifiers that make the discard decision on
// synthetic scenes the way an on-board pipeline would on real ones.
package discard

import (
	"fmt"
	"math"

	"spacedc/internal/eoimage"
)

// Criterion is one early-discard rule from Table 3.
type Criterion struct {
	Name string
	// Rate is the fraction of frames the rule discards, derived from
	// gross Earth characteristics (50% night, 70% ocean, …).
	Rate float64
}

// ECR returns the effective compression ratio of the criterion:
// 1 / (1 - rate). A rule that drops 95% of frames is a 20× ECR.
func (c Criterion) ECR() float64 {
	if c.Rate >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - c.Rate)
}

// Table 3 criteria.
var (
	None        = Criterion{Name: "None", Rate: 0}
	Night       = Criterion{Name: "Night", Rate: 0.5}
	Ocean       = Criterion{Name: "Ocean", Rate: 0.7}
	Uninhabited = Criterion{Name: "Uninhabited", Rate: 0.9}
	NonBuiltUp  = Criterion{Name: "Non-Built-Up", Rate: 0.98}
	Cloudy      = Criterion{Name: "Cloudy", Rate: 0.67}
)

// Table3 returns the paper's Table 3 rows in order.
func Table3() []Criterion {
	return []Criterion{None, Night, Ocean, Uninhabited, NonBuiltUp, Cloudy}
}

// CombineIndependent returns the combined discard rate of several criteria
// under the independence assumption: 1 - Π(1 - rᵢ). The paper cautions
// this is optimistic — cloud cover correlates with ocean, uninhabited
// implies non-built-up — so real combined rates are lower; use it as an
// upper bound.
func CombineIndependent(criteria ...Criterion) Criterion {
	keep := 1.0
	name := ""
	for i, c := range criteria {
		keep *= 1 - c.Rate
		if i > 0 {
			name += "+"
		}
		name += c.Name
	}
	return Criterion{Name: name, Rate: 1 - keep}
}

// Classifier decides whether a frame should be discarded.
type Classifier interface {
	// Name identifies the rule.
	Name() string
	// Discard reports whether the scene should be dropped.
	Discard(s *eoimage.Scene) bool
}

// NightClassifier drops frames whose mean luminance is below Threshold
// (0–255 scale). Zero threshold means the default of 20.
type NightClassifier struct {
	Threshold float64
}

// Name implements Classifier.
func (NightClassifier) Name() string { return "night" }

// Discard implements Classifier.
func (n NightClassifier) Discard(s *eoimage.Scene) bool {
	th := n.Threshold
	if th == 0 {
		th = 20
	}
	return meanLuminance(s) < th
}

// OceanClassifier drops frames dominated by open water, detected by blue
// channel dominance. MinBlueFraction is the share of blue-dominant pixels
// required to call the frame ocean (default 0.8).
type OceanClassifier struct {
	MinBlueFraction float64
}

// Name implements Classifier.
func (OceanClassifier) Name() string { return "ocean" }

// Discard implements Classifier.
func (o OceanClassifier) Discard(s *eoimage.Scene) bool {
	minFrac := o.MinBlueFraction
	if minFrac == 0 {
		minFrac = 0.8
	}
	blue := 0
	for i := 0; i < s.Pixels(); i++ {
		if float64(s.B[i]) > 1.15*float64(s.R[i]) && s.B[i] > s.G[i] {
			blue++
		}
	}
	return float64(blue)/float64(s.Pixels()) >= minFrac
}

// CloudClassifier drops frames whose bright-white pixel share exceeds
// MaxCloudFraction (default 0.6, near the paper's 2/3 global cloud cover).
type CloudClassifier struct {
	MaxCloudFraction float64
}

// Name implements Classifier.
func (CloudClassifier) Name() string { return "cloud" }

// Discard implements Classifier.
func (c CloudClassifier) Discard(s *eoimage.Scene) bool {
	maxFrac := c.MaxCloudFraction
	if maxFrac == 0 {
		maxFrac = 0.6
	}
	cloudy := 0
	for i := 0; i < s.Pixels(); i++ {
		r, g, b := float64(s.R[i]), float64(s.G[i]), float64(s.B[i])
		bright := r > 150 && g > 150 && b > 150
		gray := math.Abs(r-g) < 40 && math.Abs(g-b) < 40
		if bright && gray {
			cloudy++
		}
	}
	return float64(cloudy)/float64(s.Pixels()) >= maxFrac
}

// BuiltUpClassifier drops frames without man-made structure, detected by
// horizontal/vertical edge density (buildings and road grids produce
// axis-aligned gradients natural scenes lack). MinEdgeDensity defaults to
// 0.05.
type BuiltUpClassifier struct {
	MinEdgeDensity float64
}

// Name implements Classifier.
func (BuiltUpClassifier) Name() string { return "built-up" }

// Discard implements Classifier.
func (b BuiltUpClassifier) Discard(s *eoimage.Scene) bool {
	minDensity := b.MinEdgeDensity
	if minDensity == 0 {
		minDensity = 0.05
	}
	return edgeDensity(s) < minDensity
}

// meanLuminance returns the average of (R+G+B)/3 over the scene.
func meanLuminance(s *eoimage.Scene) float64 {
	var total float64
	for i := 0; i < s.Pixels(); i++ {
		total += (float64(s.R[i]) + float64(s.G[i]) + float64(s.B[i])) / 3
	}
	return total / float64(s.Pixels())
}

// edgeDensity returns the fraction of pixels with a strong axis-aligned
// gradient in the green channel.
func edgeDensity(s *eoimage.Scene) float64 {
	const threshold = 40.0
	edges := 0
	w, h := s.Width, s.Height
	for y := 1; y < h; y++ {
		for x := 1; x < w; x++ {
			i := y*w + x
			dx := math.Abs(float64(s.G[i]) - float64(s.G[i-1]))
			dy := math.Abs(float64(s.G[i]) - float64(s.G[i-w]))
			if dx > threshold || dy > threshold {
				edges++
			}
		}
	}
	return float64(edges) / float64((w-1)*(h-1))
}

// Pipeline applies classifiers in order; a frame is discarded when any
// classifier votes to drop it.
type Pipeline struct {
	Classifiers []Classifier
}

// Discard reports the combined decision.
func (p Pipeline) Discard(s *eoimage.Scene) bool {
	for _, c := range p.Classifiers {
		if c.Discard(s) {
			return true
		}
	}
	return false
}

// Stats summarizes a pipeline evaluation over a batch of frames.
type Stats struct {
	Frames    int
	Discarded int
}

// Rate returns the achieved discard rate.
func (s Stats) Rate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Discarded) / float64(s.Frames)
}

// ECR returns the achieved effective compression ratio.
func (s Stats) ECR() float64 {
	kept := s.Frames - s.Discarded
	if kept == 0 {
		return math.Inf(1)
	}
	return float64(s.Frames) / float64(kept)
}

// Evaluate runs the pipeline over frames and tallies the discard rate.
func (p Pipeline) Evaluate(frames []*eoimage.Scene) Stats {
	st := Stats{Frames: len(frames)}
	for _, f := range frames {
		if p.Discard(f) {
			st.Discarded++
		}
	}
	return st
}

// ValidateRate checks a criterion's rate is a probability.
func (c Criterion) ValidateRate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("discard: rate %v outside [0,1]", c.Rate)
	}
	return nil
}
