package groundstation

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/datagen"
	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

func TestTable2Counts(t *testing.T) {
	rows := Table2()
	if len(rows) != 9 {
		t.Fatalf("Table 2 has %d providers, want 9", len(rows))
	}
	// Spot-check the paper's totals.
	want := map[string]int{
		"AWS Ground Station":           11,
		"Azure Ground Stations":        19,
		"KSat Ground Network Services": 26,
		"Viasat Real-Time Earth":       14,
		"US Electrodynamics Inc":       2,
		"Swedish Space Corporation":    10,
		"Atlas Space Operations":       13,
		"Leaf Space":                   14,
		"RBC Signals":                  51,
	}
	for _, p := range rows {
		if got := p.Total(); got != want[p.Name] {
			t.Errorf("%s total = %d, want %d", p.Name, got, want[p.Name])
		}
	}
	if got := TotalStations(); got != 160 {
		t.Errorf("total stations = %d, want 160", got)
	}
}

func TestOnlyKSatReachesAntarctica(t *testing.T) {
	for _, p := range Table2() {
		hasAntarctica := p.Antarctica > 0
		if hasAntarctica != (p.Name == "KSat Ground Network Services") {
			t.Errorf("%s Antarctica = %d", p.Name, p.Antarctica)
		}
	}
}

func TestRepresentativeSitesSpanLatitudes(t *testing.T) {
	sites := RepresentativeSites()
	if len(sites) < 6 {
		t.Fatalf("too few sites: %d", len(sites))
	}
	var hasPolar, hasEquatorial, hasSouthern bool
	for _, s := range sites {
		lat := s.LatDeg()
		if math.Abs(lat) > 65 {
			hasPolar = true
		}
		if math.Abs(lat) < 15 {
			hasEquatorial = true
		}
		if lat < -20 {
			hasSouthern = true
		}
	}
	if !hasPolar || !hasEquatorial || !hasSouthern {
		t.Errorf("sites lack latitude diversity: polar=%v equatorial=%v southern=%v",
			hasPolar, hasEquatorial, hasSouthern)
	}
}

func TestPolarStationSeesSSOEveryRevolution(t *testing.T) {
	// Sanity-couple the Table 2 geometry with the orbit package: a polar
	// station (Svalbard) should see a sun-synchronous satellite on most
	// revolutions; an equatorial station should not.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	el, ok := orbit.SunSynchronous(550, 0, 0, epoch)
	if !ok {
		t.Fatal("no SSO at 550 km")
	}
	prop := orbit.J2Propagator{Elements: el}
	deg := math.Pi / 180
	svalbard := orbit.Geodetic{LatRad: 78.2 * deg, LonRad: 15.4 * deg}
	singapore := orbit.Geodetic{LatRad: 1.3 * deg, LonRad: 103.8 * deg}

	span := 24 * time.Hour
	polarWindows, err := orbit.FindWindows(
		orbit.GroundStationVisibility(prop, svalbard, 5*deg), epoch, span, 30*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	equatorialWindows, err := orbit.FindWindows(
		orbit.GroundStationVisibility(prop, singapore, 5*deg), epoch, span, 30*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	revs := float64(span) / float64(el.Period()) // ≈15
	if float64(len(polarWindows)) < 0.6*revs {
		t.Errorf("Svalbard saw %d passes in %v revs; polar stations should see most", len(polarWindows), revs)
	}
	if len(equatorialWindows) >= len(polarWindows) {
		t.Errorf("equatorial station (%d passes) should see fewer than polar (%d)",
			len(equatorialWindows), len(polarWindows))
	}
}

func TestBudgetZeroChannels(t *testing.T) {
	pm := DefaultPassModel()
	rate := datagen.Default4K.DataRate(3, 0.95)
	b := pm.Budget(rate, 0)
	if b.Deficit != 1 {
		t.Errorf("zero channels deficit = %v, want 1", b.Deficit)
	}
	if b.DownlinkSeconds != 0 || b.Cost != 0 {
		t.Errorf("zero channels should cost nothing: %+v", b)
	}
}

func TestBudgetDeficitMonotonic(t *testing.T) {
	pm := DefaultPassModel()
	rate := datagen.Default4K.DataRate(1, 0.95)
	prev := 2.0
	for n := 0.0; n <= 16; n++ {
		b := pm.Budget(rate, n)
		if b.Deficit > prev+1e-12 {
			t.Fatalf("deficit increased with more channels at n=%v", n)
		}
		if b.Deficit < 0 || b.Deficit > 1 {
			t.Fatalf("deficit %v outside [0,1]", b.Deficit)
		}
		prev = b.Deficit
	}
}

func TestBudgetConservation(t *testing.T) {
	pm := DefaultPassModel()
	rate := datagen.Default4K.DataRate(0.3, 0.95)
	for n := 0.0; n <= 8; n += 2 {
		b := pm.Budget(rate, n)
		// Downlinked = generated × (1 - deficit).
		want := float64(b.GeneratedBits) * (1 - b.Deficit)
		if math.Abs(float64(b.DownlinkedBits)-want) > 1 {
			t.Errorf("n=%v: downlinked %v != generated×(1-DD) %v", n, float64(b.DownlinkedBits), want)
		}
		// Downlinked never exceeds channel capacity.
		if b.DownlinkedBits > b.DownlinkableBits {
			t.Errorf("n=%v: downlinked more than channel capacity", n)
		}
	}
}

func TestFig5Shape3mVsFine(t *testing.T) {
	// At 3 m with 95% early discard, a handful of channel-passes clears
	// the backlog; at 10 cm even dozens leave a large deficit.
	pm := DefaultPassModel()
	coarse := pm.Budget(datagen.Default4K.DataRate(3, 0.95), 1)
	if coarse.Deficit > 0.01 {
		t.Errorf("3 m / 95%% ED with 1 pass: deficit %v, want ≈0", coarse.Deficit)
	}
	fine := pm.Budget(datagen.Default4K.DataRate(0.1, 0.95), 32)
	if fine.Deficit < 0.5 {
		t.Errorf("10 cm / 95%% ED with 32 passes: deficit %v, want > 0.5", fine.Deficit)
	}
}

func TestChannelsForZeroDeficit(t *testing.T) {
	pm := DefaultPassModel()
	rate := datagen.Default4K.DataRate(1, 0.95)
	n := pm.ChannelsForZeroDeficit(rate)
	b := pm.Budget(rate, n)
	if b.Deficit > 1e-9 {
		t.Errorf("deficit %v with %v channels, want 0", b.Deficit, n)
	}
	if n > 1 {
		// One channel fewer must leave a deficit.
		if b2 := pm.Budget(rate, n-1); b2.Deficit <= 0 {
			t.Errorf("%v channels already achieve zero deficit", n-1)
		}
	}
}

func TestDownlinkCost(t *testing.T) {
	pm := DefaultPassModel()
	// If the satellite downlinks for exactly one pass (8 min), the cost
	// is 8 × $3 = $24.
	rate := pm.ChannelRate // generate exactly one pass worth over PassSeconds
	gen := units.DataRate(float64(rate) * pm.PassSeconds / pm.PeriodSeconds)
	b := pm.Budget(gen, 1)
	if math.Abs(float64(b.Cost)-24) > 0.01 {
		t.Errorf("one-pass cost = %v, want $24", b.Cost)
	}
	// 64-satellite constellation, ~15 revs/day → ≈ $23k/day.
	daily := pm.ConstellationDailyCost(b, 64)
	if daily < 20000*units.Dollar || daily > 30000*units.Dollar {
		t.Errorf("daily cost = %v, want ≈$23k", daily)
	}
}

func TestHighResolutionCostIsProhibitive(t *testing.T) {
	// The paper: at 10 cm with 99% early discard, downlink at commercial
	// rates costs over $1000/min for the constellation. Our model:
	// 64 satellites each needing many concurrent channels.
	pm := DefaultPassModel()
	rate := datagen.Default4K.DataRate(0.1, 0.99)
	n := pm.ChannelsForZeroDeficit(rate)
	b := pm.Budget(rate, n)
	perMinute := float64(pm.ConstellationDailyCost(b, 64)) / (24 * 60)
	if perMinute < 1000 {
		t.Errorf("constellation downlink cost $%.0f/min, want > $1000 (paper)", perMinute)
	}
}

func TestPassModelValidate(t *testing.T) {
	if err := DefaultPassModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := DefaultPassModel()
	bad.ChannelRate = 0
	if bad.Validate() == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultPassModel()
	bad.PassSeconds = 7000
	if bad.Validate() == nil {
		t.Error("pass longer than revolution accepted")
	}
	bad = DefaultPassModel()
	bad.PeriodSeconds = 0
	if bad.Validate() == nil {
		t.Error("zero period accepted")
	}
}

func TestBudgetNegativeChannelsClamped(t *testing.T) {
	pm := DefaultPassModel()
	b := pm.Budget(100*units.Mbps, -3)
	if b.Deficit != 1 {
		t.Errorf("negative channels should clamp to zero: %+v", b)
	}
}
