package groundstation

import (
	"fmt"
	"sort"
	"time"

	"spacedc/internal/orbit"
)

// This file schedules satellite passes onto a station's limited antennas —
// the physical constraint behind Table 2's capacity argument ("ultimately
// limited by number of antennas, typically < 100"). Passes that cannot get
// an antenna are lost downlink opportunities.

// Pass is one downlink opportunity for one satellite at one station.
type Pass struct {
	Satellite int
	Window    orbit.Window
}

// Schedule is the result of fitting passes to antennas.
type Schedule struct {
	Served   []Pass
	Rejected []Pass
	// AntennaBusy is the total antenna-time consumed.
	AntennaBusy time.Duration
}

// ServedFraction returns the share of requested passes that got antennas.
func (s Schedule) ServedFraction() float64 {
	total := len(s.Served) + len(s.Rejected)
	if total == 0 {
		return 1
	}
	return float64(len(s.Served)) / float64(total)
}

// ScheduleAntennas assigns passes to `antennas` identical antennas using
// the classic earliest-deadline greedy: process passes by start time and
// give each to the antenna that frees up first; if none is free before the
// pass starts… antennas track, so a pass is only rejected when every
// antenna is still busy at its start. Partial passes are not served —
// real stations need the whole arc for lock and downlink.
func ScheduleAntennas(passes []Pass, antennas int) (Schedule, error) {
	if antennas <= 0 {
		return Schedule{}, fmt.Errorf("groundstation: non-positive antenna count %d", antennas)
	}
	sorted := make([]Pass, len(passes))
	copy(sorted, passes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Window.Start.Before(sorted[j].Window.Start)
	})

	// freeAt[i] is when antenna i becomes available.
	freeAt := make([]time.Time, antennas)
	var out Schedule
	for _, p := range sorted {
		// Find the antenna that frees earliest.
		best := 0
		for i := 1; i < antennas; i++ {
			if freeAt[i].Before(freeAt[best]) {
				best = i
			}
		}
		if freeAt[best].After(p.Window.Start) {
			out.Rejected = append(out.Rejected, p)
			continue
		}
		freeAt[best] = p.Window.End
		out.Served = append(out.Served, p)
		out.AntennaBusy += p.Window.Duration()
	}
	return out, nil
}

// ComputePasses finds all passes of the satellites over a single station
// during the span.
func ComputePasses(sats []orbit.Propagator, site orbit.Geodetic, minElevRad float64,
	start time.Time, span time.Duration) ([]Pass, error) {
	var out []Pass
	for i, sat := range sats {
		windows, err := orbit.FindWindows(
			orbit.GroundStationVisibility(sat, site, minElevRad),
			start, span, 30*time.Second, time.Second)
		if err != nil {
			return nil, err
		}
		for _, w := range windows {
			out = append(out, Pass{Satellite: i, Window: w})
		}
	}
	return out, nil
}

// AntennasForFullService returns the smallest antenna count that serves
// every pass, up to the search limit.
func AntennasForFullService(passes []Pass, limit int) (int, error) {
	for n := 1; n <= limit; n++ {
		s, err := ScheduleAntennas(passes, n)
		if err != nil {
			return 0, err
		}
		if len(s.Rejected) == 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("groundstation: more than %d antennas needed", limit)
}
