package groundstation

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
)

var schedEpoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// passAt builds a pass from start-minute to end-minute.
func passAt(sat, startMin, endMin int) Pass {
	return Pass{Satellite: sat, Window: orbit.Window{
		Start: schedEpoch.Add(time.Duration(startMin) * time.Minute),
		End:   schedEpoch.Add(time.Duration(endMin) * time.Minute),
	}}
}

func TestScheduleNonOverlapping(t *testing.T) {
	passes := []Pass{passAt(0, 0, 8), passAt(1, 10, 18), passAt(2, 20, 28)}
	s, err := ScheduleAntennas(passes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Served) != 3 || len(s.Rejected) != 0 {
		t.Errorf("one antenna should serve sequential passes: %+v", s)
	}
	if s.AntennaBusy != 24*time.Minute {
		t.Errorf("busy time = %v, want 24 min", s.AntennaBusy)
	}
	if s.ServedFraction() != 1 {
		t.Errorf("served fraction = %v", s.ServedFraction())
	}
}

func TestScheduleOverlappingNeedsMoreAntennas(t *testing.T) {
	// Three simultaneous passes: one antenna serves one, three serve all.
	passes := []Pass{passAt(0, 0, 8), passAt(1, 1, 9), passAt(2, 2, 10)}
	one, err := ScheduleAntennas(passes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Served) != 1 || len(one.Rejected) != 2 {
		t.Errorf("one antenna: %d served, %d rejected", len(one.Served), len(one.Rejected))
	}
	three, err := ScheduleAntennas(passes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(three.Rejected) != 0 {
		t.Errorf("three antennas should serve all: %+v", three.Rejected)
	}
	n, err := AntennasForFullService(passes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("full service needs %d antennas, want 3", n)
	}
}

func TestScheduleUnsortedInput(t *testing.T) {
	passes := []Pass{passAt(2, 20, 28), passAt(0, 0, 8), passAt(1, 10, 18)}
	s, err := ScheduleAntennas(passes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rejected) != 0 {
		t.Error("scheduler must sort by start time")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := ScheduleAntennas(nil, 0); err == nil {
		t.Error("zero antennas accepted")
	}
	s, err := ScheduleAntennas(nil, 2)
	if err != nil || s.ServedFraction() != 1 {
		t.Errorf("empty schedule: %+v err %v", s, err)
	}
	if _, err := AntennasForFullService([]Pass{passAt(0, 0, 5), passAt(1, 0, 5), passAt(2, 0, 5)}, 2); err == nil {
		t.Error("limit exceeded should error")
	}
}

func TestConstellationOverwhelmsStation(t *testing.T) {
	// The Table 2 argument end to end: a 64-satellite constellation's
	// passes over one polar station exceed what a 3-antenna site serves;
	// full service needs many antennas.
	deg := math.Pi / 180
	var sats []orbit.Propagator
	for i := 0; i < 16; i++ { // 16 sats in 4 planes keeps the test fast
		el := orbit.CircularLEO(550, 97.6*deg, float64(i%4)*math.Pi/2, float64(i)*math.Pi/8, schedEpoch)
		sats = append(sats, orbit.J2Propagator{Elements: el})
	}
	svalbard := orbit.Geodetic{LatRad: 78.2 * deg, LonRad: 15.4 * deg}
	passes, err := ComputePasses(sats, svalbard, 5*deg, schedEpoch, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 30 {
		t.Fatalf("only %d passes; polar station should see SSO sats every rev", len(passes))
	}
	few, err := ScheduleAntennas(passes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(few.Rejected) == 0 {
		t.Error("2 antennas should drop passes from 16 satellites")
	}
	many, err := ScheduleAntennas(passes, 16)
	if err != nil {
		t.Fatal(err)
	}
	if many.ServedFraction() <= few.ServedFraction() {
		t.Error("more antennas must serve more passes")
	}
}
