// Package groundstation models the Earth-side of the downlink problem: the
// commercial Ground-Station-as-a-Service networks of the paper's Table 2,
// representative station geometry for contact analysis, the per-revolution
// downlink-deficit model of Fig 5, and the $3/min/channel cost model.
package groundstation

import (
	"fmt"
	"math"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// Provider is one row of Table 2: a GSaaS operator and its station count by
// continent.
type Provider struct {
	Name         string
	NorthAmerica int
	SouthAmerica int
	Africa       int
	EuropeMENA   int
	AsiaPacific  int
	Antarctica   int
}

// Total returns the provider's station count.
func (p Provider) Total() int {
	return p.NorthAmerica + p.SouthAmerica + p.Africa + p.EuropeMENA + p.AsiaPacific + p.Antarctica
}

// Table2 reproduces the paper's Table 2 GSaaS inventory.
func Table2() []Provider {
	return []Provider{
		{"AWS Ground Station", 2, 1, 1, 3, 4, 0},
		{"Azure Ground Stations", 4, 1, 3, 6, 5, 0},
		{"KSat Ground Network Services", 4, 2, 4, 9, 6, 1},
		{"Viasat Real-Time Earth", 4, 1, 2, 4, 3, 0},
		{"US Electrodynamics Inc", 2, 0, 0, 0, 0, 0},
		{"Swedish Space Corporation", 3, 2, 0, 2, 3, 0},
		{"Atlas Space Operations", 4, 0, 1, 3, 5, 0},
		{"Leaf Space", 1, 0, 1, 8, 4, 0},
		{"RBC Signals", 12, 2, 3, 18, 16, 0},
	}
}

// TotalStations sums all providers' stations (the paper's ~160 worldwide).
func TotalStations() int {
	total := 0
	for _, p := range Table2() {
		total += p.Total()
	}
	return total
}

// RepresentativeSites returns geodetic locations standing in for a global
// GSaaS network — one or two per populated continent plus polar stations,
// which is how real networks are laid out (high-latitude sites see polar
// orbits every revolution).
func RepresentativeSites() []orbit.Geodetic {
	deg := math.Pi / 180
	return []orbit.Geodetic{
		{LatRad: 47.6 * deg, LonRad: -122.3 * deg}, // Seattle, N. America
		{LatRad: -33.4 * deg, LonRad: -70.7 * deg}, // Santiago, S. America
		{LatRad: 59.3 * deg, LonRad: 18.1 * deg},   // Stockholm, Europe
		{LatRad: -25.9 * deg, LonRad: 27.7 * deg},  // Hartebeesthoek, Africa
		{LatRad: 1.3 * deg, LonRad: 103.8 * deg},   // Singapore, Asia
		{LatRad: -35.3 * deg, LonRad: 149.1 * deg}, // Canberra, Pacific
		{LatRad: 78.2 * deg, LonRad: 15.4 * deg},   // Svalbard (polar)
		{LatRad: -72.0 * deg, LonRad: 2.5 * deg},   // Troll, Antarctica (polar)
	}
}

// CostPerChannelMinute is the going GSaaS rate the paper quotes for AWS,
// Azure, and KSat.
const CostPerChannelMinute = 3 * units.Dollar

// PassModel describes downlink opportunity per orbital revolution.
type PassModel struct {
	// ChannelRate is the per-channel downlink rate (Dove: 220 Mb/s).
	ChannelRate units.DataRate
	// PassSeconds is the usable contact duration of one channel-pass.
	// LEO passes above 5° elevation last roughly 8 minutes.
	PassSeconds float64
	// PeriodSeconds is the orbital revolution period.
	PeriodSeconds float64
}

// DefaultPassModel matches the paper's Fig 5 assumptions: Dove-like
// 220 Mb/s channels, ~8 minute usable passes, a ~95.7 minute period
// (550 km).
func DefaultPassModel() PassModel {
	return PassModel{
		ChannelRate:   220 * units.Mbps,
		PassSeconds:   480,
		PeriodSeconds: 5740,
	}
}

// Validate checks the model.
func (pm PassModel) Validate() error {
	if pm.ChannelRate <= 0 {
		return fmt.Errorf("groundstation: non-positive channel rate %v", pm.ChannelRate)
	}
	if pm.PassSeconds <= 0 || pm.PeriodSeconds <= 0 {
		return fmt.Errorf("groundstation: non-positive pass %v or period %v", pm.PassSeconds, pm.PeriodSeconds)
	}
	if pm.PassSeconds > pm.PeriodSeconds {
		return fmt.Errorf("groundstation: pass %v s longer than revolution %v s", pm.PassSeconds, pm.PeriodSeconds)
	}
	return nil
}

// RevolutionBudget is the Fig 5 accounting for one satellite over one
// orbital revolution.
type RevolutionBudget struct {
	GeneratedBits    units.DataSize // data produced this revolution (post early discard)
	DownlinkableBits units.DataSize // data the channel-passes could carry
	DownlinkedBits   units.DataSize // min(generated, downlinkable)
	Deficit          float64        // fraction of generated data that must be discarded
	DownlinkSeconds  float64        // transmitter-on time this revolution
	Cost             units.Money    // channel-minutes × $3
}

// Budget computes the Fig 5 downlink-deficit quantities for a satellite
// generating genRate (already including early discard) with channelPasses
// channel-passes available per revolution.
func (pm PassModel) Budget(genRate units.DataRate, channelPasses float64) RevolutionBudget {
	if channelPasses < 0 {
		channelPasses = 0
	}
	gen := genRate.Volume(pm.PeriodSeconds)
	capa := pm.ChannelRate.Volume(pm.PassSeconds * channelPasses)
	down := gen
	if capa < down {
		down = capa
	}
	var deficit float64
	if gen > 0 {
		deficit = 1 - float64(down)/float64(gen)
	}
	seconds := pm.ChannelRate.Transmit(down)
	minutes := seconds / 60
	return RevolutionBudget{
		GeneratedBits:    gen,
		DownlinkableBits: capa,
		DownlinkedBits:   down,
		Deficit:          deficit,
		DownlinkSeconds:  seconds,
		Cost:             units.Money(minutes * float64(CostPerChannelMinute)),
	}
}

// ChannelsForZeroDeficit returns the number of channel-passes per
// revolution needed to downlink everything the satellite generates.
func (pm PassModel) ChannelsForZeroDeficit(genRate units.DataRate) float64 {
	perPass := pm.ChannelRate.Volume(pm.PassSeconds)
	if perPass <= 0 {
		return math.Inf(1)
	}
	gen := genRate.Volume(pm.PeriodSeconds)
	return math.Ceil(float64(gen) / float64(perPass))
}

// ConstellationDailyCost returns the downlink bill for a constellation of n
// satellites each running the given per-revolution budget, per day.
func (pm PassModel) ConstellationDailyCost(b RevolutionBudget, n int) units.Money {
	revsPerDay := 86400 / pm.PeriodSeconds
	return units.Money(float64(b.Cost) * float64(n) * revsPerDay)
}
