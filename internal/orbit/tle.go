package orbit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"spacedc/internal/vecmath"
)

// TLE is a parsed NORAD two-line element set. Angles are radians and the
// mean motion is rad/min, ready for SGP4 initialization.
type TLE struct {
	Name         string    // optional title line
	NoradID      string    // catalog number, columns 3–7 of line 1
	Epoch        time.Time // UTC epoch
	BStar        float64   // drag term, 1/earth-radii
	Inclination  float64   // radians
	RAAN         float64   // radians
	Eccentricity float64
	ArgPerigee   float64 // radians
	MeanAnomaly  float64 // radians
	MeanMotion   float64 // rad/min
}

// ParseTLE parses a two- or three-line element set. When three lines are
// given the first is the satellite name. Both line checksums are verified.
func ParseTLE(text string) (TLE, error) {
	var lines []string
	for _, l := range strings.Split(text, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, strings.TrimRight(l, "\r"))
		}
	}
	var tle TLE
	switch len(lines) {
	case 3:
		tle.Name = strings.TrimSpace(lines[0])
		lines = lines[1:]
	case 2:
	default:
		return TLE{}, fmt.Errorf("tle: want 2 or 3 lines, got %d", len(lines))
	}
	l1, l2 := lines[0], lines[1]
	if len(l1) < 68 || len(l2) < 68 {
		return TLE{}, fmt.Errorf("tle: lines too short (%d, %d chars)", len(l1), len(l2))
	}
	if l1[0] != '1' || l2[0] != '2' {
		return TLE{}, fmt.Errorf("tle: bad line numbers %q, %q", l1[0], l2[0])
	}
	for i, l := range []string{l1, l2} {
		if len(l) >= 69 {
			if err := verifyChecksum(l); err != nil {
				return TLE{}, fmt.Errorf("tle: line %d: %w", i+1, err)
			}
		}
	}

	tle.NoradID = strings.TrimSpace(l1[2:7])

	epoch, err := parseTLEEpoch(l1[18:32])
	if err != nil {
		return TLE{}, fmt.Errorf("tle: epoch: %w", err)
	}
	tle.Epoch = epoch

	tle.BStar, err = parseTLEExp(l1[53:61])
	if err != nil {
		return TLE{}, fmt.Errorf("tle: bstar: %w", err)
	}

	deg := math.Pi / 180
	fields := []struct {
		dst   *float64
		src   string
		scale float64
	}{
		{&tle.Inclination, l2[8:16], deg},
		{&tle.RAAN, l2[17:25], deg},
		{&tle.ArgPerigee, l2[34:42], deg},
		{&tle.MeanAnomaly, l2[43:51], deg},
	}
	for _, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f.src), 64)
		if err != nil {
			return TLE{}, fmt.Errorf("tle: field %q: %w", f.src, err)
		}
		*f.dst = v * f.scale
	}

	// Eccentricity has an implied leading decimal point.
	eccStr := strings.TrimSpace(l2[26:33])
	ecc, err := strconv.ParseFloat("0."+eccStr, 64)
	if err != nil {
		return TLE{}, fmt.Errorf("tle: eccentricity %q: %w", eccStr, err)
	}
	tle.Eccentricity = ecc

	// Mean motion in revs/day → rad/min.
	mm, err := strconv.ParseFloat(strings.TrimSpace(l2[52:63]), 64)
	if err != nil {
		return TLE{}, fmt.Errorf("tle: mean motion: %w", err)
	}
	tle.MeanMotion = mm * 2 * math.Pi / 1440

	return tle, nil
}

// verifyChecksum validates the modulo-10 checksum in column 69.
func verifyChecksum(line string) error {
	sum := 0
	for _, c := range line[:68] {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	want := int(line[68] - '0')
	if sum%10 != want {
		return fmt.Errorf("checksum %d != %d", sum%10, want)
	}
	return nil
}

// parseTLEEpoch parses the YYDDD.DDDDDDDD epoch field.
func parseTLEEpoch(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	yy, err := strconv.Atoi(s[:2])
	if err != nil {
		return time.Time{}, err
	}
	year := 2000 + yy
	if yy >= 57 { // TLE convention: 57–99 → 1957–1999
		year = 1900 + yy
	}
	doy, err := strconv.ParseFloat(s[2:], 64)
	if err != nil {
		return time.Time{}, err
	}
	jan1 := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	// Day-of-year is 1-based.
	return jan1.Add(time.Duration((doy - 1) * 24 * float64(time.Hour))), nil
}

// parseTLEExp parses the TLE "exponential" notation like " 66816-4"
// (mantissa with implied decimal point, exponent), used for BSTAR.
func parseTLEExp(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "00000-0" || s == "00000+0" {
		return 0, nil
	}
	sign := 1.0
	if s[0] == '-' {
		sign = -1
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	// Split mantissa and exponent: the exponent is the trailing signed digit.
	expSign := 1
	idx := strings.LastIndexAny(s, "+-")
	if idx <= 0 {
		return 0, fmt.Errorf("bad exp field %q", s)
	}
	if s[idx] == '-' {
		expSign = -1
	}
	mant, err := strconv.ParseFloat("0."+s[:idx], 64)
	if err != nil {
		return 0, err
	}
	exp, err := strconv.Atoi(s[idx+1:])
	if err != nil {
		return 0, err
	}
	return sign * mant * math.Pow(10, float64(expSign*exp)), nil
}

// Format renders the TLE as a two-line element set (three lines when the
// TLE has a name), with valid checksums, parseable by ParseTLE.
func (t TLE) Format() string {
	deg := 180 / math.Pi
	l1 := fmt.Sprintf("1 %5sU 00000A   %s %s %s %s 0    0",
		padID(t.NoradID),
		formatTLEEpoch(t.Epoch),
		" .00000000", // ndot/2: not carried by this model
		formatTLEExp(0),
		formatTLEExp(t.BStar))
	l2 := fmt.Sprintf("2 %5s %8.4f %8.4f %s %8.4f %8.4f %11.8f    0",
		padID(t.NoradID),
		t.Inclination*deg,
		vecmath.WrapTwoPi(t.RAAN)*deg,
		formatTLEEcc(t.Eccentricity),
		vecmath.WrapTwoPi(t.ArgPerigee)*deg,
		vecmath.WrapTwoPi(t.MeanAnomaly)*deg,
		t.MeanMotion*1440/(2*math.Pi))
	out := appendChecksum(l1) + "\n" + appendChecksum(l2)
	if t.Name != "" {
		out = t.Name + "\n" + out
	}
	return out
}

// padID right-justifies a catalog number into 5 columns.
func padID(id string) string {
	if id == "" {
		id = "00000"
	}
	for len(id) < 5 {
		id = "0" + id
	}
	if len(id) > 5 {
		id = id[:5]
	}
	return id
}

// formatTLEEpoch renders the YYDDD.DDDDDDDD field.
func formatTLEEpoch(t time.Time) string {
	t = t.UTC()
	yy := t.Year() % 100
	jan1 := time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
	doy := 1 + t.Sub(jan1).Hours()/24
	return fmt.Sprintf("%02d%012.8f", yy, doy)
}

// formatTLEEcc renders the implied-decimal eccentricity field.
func formatTLEEcc(e float64) string {
	v := int(math.Round(e * 1e7))
	if v < 0 {
		v = 0
	}
	if v > 9999999 {
		v = 9999999
	}
	return fmt.Sprintf("%07d", v)
}

// formatTLEExp renders the TLE exponential notation (" 66816-4" style).
func formatTLEExp(v float64) string {
	if v == 0 {
		return " 00000-0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v))) + 1
	mant := v / math.Pow(10, float64(exp))
	digits := int(math.Round(mant * 1e5))
	if digits >= 1e5 {
		digits /= 10
		exp++
	}
	expSign := "+"
	if exp < 0 {
		expSign = "-"
		exp = -exp
	}
	return fmt.Sprintf("%s%05d%s%d", sign, digits, expSign, exp)
}

// appendChecksum pads a line to 68 columns and appends its checksum digit.
func appendChecksum(line string) string {
	for len(line) < 68 {
		line += " "
	}
	if len(line) > 68 {
		line = line[:68]
	}
	sum := 0
	for _, c := range line {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return line + string(rune('0'+sum%10))
}

// Elements converts the TLE's Brouwer mean elements to an osculating-ish
// Keplerian element set suitable for the two-body/J2 propagators. The
// conversion recovers the semi-major axis from the mean motion.
func (t TLE) Elements() Elements {
	nRadS := t.MeanMotion / 60
	a := math.Cbrt(EarthMuKm3S2 / (nRadS * nRadS))
	return Elements{
		Epoch:          t.Epoch,
		SemiMajorKm:    a,
		Eccentricity:   t.Eccentricity,
		InclinationRad: t.Inclination,
		RAANRad:        t.RAAN,
		ArgPerigeeRad:  t.ArgPerigee,
		MeanAnomalyRad: t.MeanAnomaly,
	}
}
