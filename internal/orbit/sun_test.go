package orbit

import (
	"math"
	"testing"
	"time"
)

func TestSunPositionDistance(t *testing.T) {
	// Earth–Sun distance stays within [0.983, 1.017] AU year-round.
	for month := time.January; month <= time.December; month++ {
		tm := time.Date(2026, month, 15, 0, 0, 0, 0, time.UTC)
		dAU := SunPositionECI(tm).Norm() / AstronomicalUnitKm
		if dAU < 0.982 || dAU > 1.018 {
			t.Errorf("%v: sun distance %v AU out of range", month, dAU)
		}
	}
}

func TestSunDeclinationSeasons(t *testing.T) {
	decl := func(tm time.Time) float64 {
		p := SunPositionECI(tm)
		return math.Asin(p.Z/p.Norm()) * 180 / math.Pi
	}
	// June solstice: declination ≈ +23.44°.
	if d := decl(time.Date(2026, 6, 21, 12, 0, 0, 0, time.UTC)); math.Abs(d-23.44) > 0.3 {
		t.Errorf("June solstice declination = %v°, want ≈23.44", d)
	}
	// December solstice: ≈ -23.44°.
	if d := decl(time.Date(2026, 12, 21, 12, 0, 0, 0, time.UTC)); math.Abs(d+23.44) > 0.3 {
		t.Errorf("December solstice declination = %v°, want ≈-23.44", d)
	}
	// March equinox: ≈ 0°.
	if d := decl(time.Date(2026, 3, 20, 12, 0, 0, 0, time.UTC)); math.Abs(d) > 0.6 {
		t.Errorf("March equinox declination = %v°, want ≈0", d)
	}
}

func TestShadowGeometry(t *testing.T) {
	tm := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	sun := SunPositionECI(tm).Unit()

	// Directly between Earth and Sun: sunlit.
	dayside := sun.Scale(EarthRadiusKm + 550)
	if got := Shadow(dayside, tm); got != Sunlit {
		t.Errorf("dayside satellite: %v, want sunlit", got)
	}
	// Anti-sun direction at LEO altitude: umbra.
	nightside := sun.Scale(-(EarthRadiusKm + 550))
	if got := Shadow(nightside, tm); got != Umbra {
		t.Errorf("nightside satellite: %v, want umbra", got)
	}
	// Anti-sun direction far beyond the umbra cone tip (~1.4M km): sunlit
	// again (the cone converges).
	farBehind := sun.Scale(-2.0e6)
	if got := Shadow(farBehind, tm); got == Umbra {
		t.Errorf("2M km behind Earth should not be in umbra")
	}
}

func TestShadowStateString(t *testing.T) {
	if Sunlit.String() != "sunlit" || Penumbra.String() != "penumbra" || Umbra.String() != "umbra" {
		t.Error("ShadowState names wrong")
	}
	if ShadowState(99).String() != "unknown" {
		t.Error("unknown state should stringify as unknown")
	}
}

func TestLEOEclipseFractionAboutOneThird(t *testing.T) {
	// The paper: "LEO satellites spend ~1/3 of their time eclipsed."
	// Pick a low-beta geometry: equatorial orbit at an equinox.
	epoch := time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)
	el := CircularLEO(550, 0, 0, 0, epoch)
	frac := EclipseFraction(el, epoch, el.Period(), 15*time.Second)
	// Geometric maximum at 550 km: asin(Re/r)/π ≈ 0.372.
	if frac < 0.30 || frac > 0.42 {
		t.Errorf("equatorial LEO eclipse fraction = %v, want ≈1/3", frac)
	}
}

func TestGEOEclipseSeasonal(t *testing.T) {
	// The paper: GEO satellites see eclipse only for weeks around the
	// equinoxes, < ~70 min/day; at solstices, none.
	equinox := time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)
	solstice := time.Date(2026, 6, 21, 0, 0, 0, 0, time.UTC)

	geo := Geostationary(0, equinox)
	atEquinox := DailyEclipseMinutes(geo, equinox, 2*time.Minute)
	if atEquinox < 20 || atEquinox > 90 {
		t.Errorf("GEO equinox eclipse = %v min/day, want ≈70", atEquinox)
	}

	geoS := Geostationary(0, solstice)
	atSolstice := DailyEclipseMinutes(geoS, solstice, 2*time.Minute)
	if atSolstice != 0 {
		t.Errorf("GEO solstice eclipse = %v min/day, want 0", atSolstice)
	}
}

func TestHighBetaOrbitNoEclipse(t *testing.T) {
	// A dawn-dusk SSO (orbit plane ⟂ sun line) at 800 km should see no or
	// almost no eclipse. Build it by aligning RAAN with the sun's RA + 90°.
	epoch := time.Date(2026, 3, 20, 12, 0, 0, 0, time.UTC)
	sun := SunPositionECI(epoch)
	sunRA := math.Atan2(sun.Y, sun.X)
	el, ok := SunSynchronous(800, sunRA+math.Pi/2, 0, epoch)
	if !ok {
		t.Fatal("no SSO at 800 km?")
	}
	frac := EclipseFraction(el, epoch, el.Period(), 15*time.Second)
	if frac > 0.05 {
		t.Errorf("dawn-dusk SSO eclipse fraction = %v, want ≈0", frac)
	}
	beta := math.Abs(BetaAngleRad(el, epoch))
	if beta < 60*math.Pi/180 {
		t.Errorf("dawn-dusk beta angle = %v°, want > 60°", beta*180/math.Pi)
	}
}

func TestEclipseFractionDegenerate(t *testing.T) {
	el := CircularLEO(550, 0, 0, 0, testEpoch)
	if got := EclipseFraction(el, testEpoch, 0, time.Second); got != 0 {
		t.Errorf("zero span should give 0, got %v", got)
	}
	if got := EclipseFraction(el, testEpoch, time.Hour, 0); got != 0 {
		t.Errorf("zero step should give 0, got %v", got)
	}
}

func TestBetaAngleEquatorialAtEquinox(t *testing.T) {
	// Equatorial orbit at equinox: sun is in the orbital plane → β ≈ 0.
	epoch := time.Date(2026, 3, 20, 12, 0, 0, 0, time.UTC)
	el := CircularLEO(550, 0, 0, 0, epoch)
	if b := math.Abs(BetaAngleRad(el, epoch)); b > 2*math.Pi/180 {
		t.Errorf("equatorial equinox beta = %v°, want ≈0", b*180/math.Pi)
	}
}
