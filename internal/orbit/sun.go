package orbit

import (
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// SunPositionECI returns the apparent geocentric position of the Sun in the
// ECI frame at time t, in km. The low-precision series (Meeus / Astronomical
// Almanac) is accurate to about 0.01°, far better than eclipse analysis
// needs.
func SunPositionECI(t time.Time) vecmath.Vec3 {
	tc := JulianCenturiesSinceJ2000(t)

	// Mean longitude and mean anomaly of the Sun, degrees.
	meanLon := math.Mod(280.460+36000.771*tc, 360)
	meanAnom := math.Mod(357.5291092+35999.05034*tc, 360) * math.Pi / 180

	// Ecliptic longitude with equation of center.
	eclLon := (meanLon +
		1.914666471*math.Sin(meanAnom) +
		0.019994643*math.Sin(2*meanAnom)) * math.Pi / 180

	// Distance in AU.
	rAU := 1.000140612 - 0.016708617*math.Cos(meanAnom) - 0.000139589*math.Cos(2*meanAnom)

	// Obliquity of the ecliptic.
	obliq := (23.439291 - 0.0130042*tc) * math.Pi / 180

	rKm := rAU * AstronomicalUnitKm
	sinLon := math.Sin(eclLon)
	return vecmath.Vec3{
		X: rKm * math.Cos(eclLon),
		Y: rKm * math.Cos(obliq) * sinLon,
		Z: rKm * math.Sin(obliq) * sinLon,
	}
}

// ShadowState classifies a satellite's illumination.
type ShadowState int

// Shadow states, from full sun to full shadow.
const (
	Sunlit ShadowState = iota
	Penumbra
	Umbra
)

// String returns the name of the shadow state.
func (s ShadowState) String() string {
	switch s {
	case Sunlit:
		return "sunlit"
	case Penumbra:
		return "penumbra"
	case Umbra:
		return "umbra"
	default:
		return "unknown"
	}
}

// Shadow returns the illumination state of an ECI position (km) at time t
// using a conical Earth-shadow model with the Sun's finite disk.
func Shadow(pos vecmath.Vec3, t time.Time) ShadowState {
	sun := SunPositionECI(t)
	return shadowWithSun(pos, sun)
}

// shadowWithSun is Shadow with a precomputed sun vector, so callers sampling
// many satellites at one instant don't recompute the solar position.
func shadowWithSun(pos, sun vecmath.Vec3) ShadowState {
	// Angle subtended by the Sun and by the Earth as seen from the satellite.
	toSun := sun.Sub(pos)
	dSun := toSun.Norm()
	dEarth := pos.Norm()
	if dEarth <= EarthRadiusKm {
		return Umbra // inside Earth: degenerate, treat as shadowed
	}

	thetaSun := math.Asin(vecmath.Clamp(SunRadiusKm/dSun, -1, 1))
	thetaEarth := math.Asin(vecmath.Clamp(EarthRadiusKm/dEarth, -1, 1))
	// Angular separation between Earth's center and the Sun's center as
	// seen from the satellite.
	sep := toSun.AngleTo(pos.Neg())

	switch {
	case sep >= thetaEarth+thetaSun:
		return Sunlit
	case sep <= thetaEarth-thetaSun:
		return Umbra
	default:
		return Penumbra
	}
}

// EclipseFraction propagates the orbit over the window [start, start+span]
// with the given sample step and returns the fraction of samples in umbra
// or penumbra. For a LEO orbit, span should cover at least one revolution.
func EclipseFraction(el Elements, start time.Time, span, step time.Duration) float64 {
	if step <= 0 || span <= 0 {
		return 0
	}
	total, dark := 0, 0
	for dt := time.Duration(0); dt < span; dt += step {
		t := start.Add(dt)
		s := el.StateAtJ2(t)
		if Shadow(s.Position, t) != Sunlit {
			dark++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(dark) / float64(total)
}

// DailyEclipseMinutes returns minutes of eclipse (umbra or penumbra) during
// the 24 h starting at day0, sampled at the given step.
func DailyEclipseMinutes(el Elements, day0 time.Time, step time.Duration) float64 {
	frac := EclipseFraction(el, day0, 24*time.Hour, step)
	return frac * 24 * 60
}

// BetaAngleRad returns the solar beta angle: the angle between the orbital
// plane and the Earth–Sun vector. Orbits with |β| above the critical value
// never enter eclipse.
func BetaAngleRad(el Elements, t time.Time) float64 {
	sun := SunPositionECI(t).Unit()
	// Orbit normal in ECI.
	normal := vecmath.RotZ(el.RAANRad).
		Mul(vecmath.RotX(el.InclinationRad)).
		MulVec(vecmath.Vec3{Z: 1})
	return math.Pi/2 - normal.AngleTo(sun)
}
