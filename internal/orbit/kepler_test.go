package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var testEpoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func TestSolveKeplerProperty(t *testing.T) {
	f := func(m, eRaw float64) bool {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return true
		}
		m = math.Mod(m, 100) // keep revolutions reasonable
		ecc := math.Abs(math.Mod(eRaw, 0.95))
		ea := SolveKepler(m, ecc)
		// Kepler's equation must hold.
		return math.Abs(ea-ecc*math.Sin(ea)-m) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveKeplerCircular(t *testing.T) {
	if got := SolveKepler(1.234, 0); got != 1.234 {
		t.Errorf("circular orbit: E = %v, want M = 1.234", got)
	}
}

func TestSolveKeplerHighEccentricity(t *testing.T) {
	// Near-parabolic orbits are the hard case for Kepler solvers.
	for _, ecc := range []float64{0.9, 0.95, 0.99, 0.999} {
		for m := 0.01; m < 2*math.Pi; m += 0.37 {
			ea := SolveKepler(m, ecc)
			if resid := math.Abs(ea - ecc*math.Sin(ea) - m); resid > 1e-8 {
				t.Errorf("e=%v M=%v: residual %v", ecc, m, resid)
			}
		}
	}
}

func TestAnomalyRoundTrip(t *testing.T) {
	f := func(nuRaw, eRaw float64) bool {
		if math.IsNaN(nuRaw) || math.IsInf(nuRaw, 0) {
			return true
		}
		nu := math.Mod(nuRaw, math.Pi) // stay off the ±π branch cut
		ecc := math.Abs(math.Mod(eRaw, 0.9))
		ea := TrueToEccentric(nu, ecc)
		back := EccentricToTrue(ea, ecc)
		return math.Abs(back-nu) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCircularLEOVelocity(t *testing.T) {
	el := CircularLEO(550, 53*math.Pi/180, 0, 0, testEpoch)
	s := el.StateAt(testEpoch)
	// v = sqrt(µ/r) ≈ 7.585 km/s at 550 km.
	want := math.Sqrt(EarthMuKm3S2 / el.SemiMajorKm)
	if got := s.Velocity.Norm(); math.Abs(got-want) > 1e-9 {
		t.Errorf("circular velocity = %v km/s, want %v", got, want)
	}
	if got := s.AltitudeKm(); math.Abs(got-550) > 1e-6 {
		t.Errorf("altitude = %v km, want 550", got)
	}
}

func TestPeriodISS(t *testing.T) {
	el := CircularLEO(420, 51.6*math.Pi/180, 0, 0, testEpoch)
	// ISS orbital period is about 92.8 minutes.
	if got := el.Period().Minutes(); math.Abs(got-92.8) > 0.5 {
		t.Errorf("420 km period = %v min, want ≈92.8", got)
	}
}

func TestGeostationaryPeriod(t *testing.T) {
	el := Geostationary(0, testEpoch)
	// Sidereal day: 86164.1 s.
	if got := el.Period().Seconds(); math.Abs(got-86164.1) > 5 {
		t.Errorf("GEO period = %v s, want ≈86164", got)
	}
	if got := el.SemiMajorKm - EarthRadiusKm; math.Abs(got-GeostationaryAltitudeKm) > 30 {
		t.Errorf("GEO altitude = %v km, want ≈35786", got)
	}
}

func TestGeostationaryStaysPut(t *testing.T) {
	el := Geostationary(30*math.Pi/180, testEpoch)
	for _, dt := range []time.Duration{0, 6 * time.Hour, 12 * time.Hour, 23 * time.Hour} {
		tm := testEpoch.Add(dt)
		sp := SubPoint(el.StateAt(tm).Position, tm)
		if math.Abs(sp.LonDeg()-30) > 0.1 {
			t.Errorf("at +%v: sub-longitude = %v°, want 30°", dt, sp.LonDeg())
		}
		if math.Abs(sp.LatDeg()) > 0.1 {
			t.Errorf("at +%v: sub-latitude = %v°, want 0°", dt, sp.LatDeg())
		}
	}
}

func TestStateAtPeriodic(t *testing.T) {
	el := CircularLEO(700, 98*math.Pi/180, 1.0, 0.5, testEpoch)
	s0 := el.StateAt(testEpoch)
	s1 := el.StateAt(testEpoch.Add(el.Period()))
	if d := s0.Position.DistanceTo(s1.Position); d > 1 {
		t.Errorf("position after one period differs by %v km", d)
	}
}

func TestElementsStateRoundTrip(t *testing.T) {
	cases := []Elements{
		CircularLEO(550, 53*math.Pi/180, 0.3, 1.2, testEpoch),
		{Epoch: testEpoch, SemiMajorKm: 8000, Eccentricity: 0.1,
			InclinationRad: 0.9, RAANRad: 2.2, ArgPerigeeRad: 1.1, MeanAnomalyRad: 0.7},
		{Epoch: testEpoch, SemiMajorKm: 26560, Eccentricity: 0.01,
			InclinationRad: 55 * math.Pi / 180, RAANRad: 4.0, ArgPerigeeRad: 0.2, MeanAnomalyRad: 3.3},
	}
	for i, el := range cases {
		s := el.StateAt(testEpoch)
		got, err := ElementsFromState(s, testEpoch)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got.SemiMajorKm-el.SemiMajorKm) > 1e-3 {
			t.Errorf("case %d: a = %v, want %v", i, got.SemiMajorKm, el.SemiMajorKm)
		}
		if math.Abs(got.Eccentricity-el.Eccentricity) > 1e-6 {
			t.Errorf("case %d: e = %v, want %v", i, got.Eccentricity, el.Eccentricity)
		}
		if math.Abs(got.InclinationRad-el.InclinationRad) > 1e-6 {
			t.Errorf("case %d: i = %v, want %v", i, got.InclinationRad, el.InclinationRad)
		}
		// Re-propagating the recovered elements must land on the same state.
		s2 := got.StateAt(testEpoch)
		if d := s.Position.DistanceTo(s2.Position); d > 0.01 {
			t.Errorf("case %d: round-trip position differs by %v km", i, d)
		}
	}
}

func TestElementsFromStateEnergyCheck(t *testing.T) {
	// A hyperbolic state must be rejected.
	s := State{}
	s.Position.X = 7000
	s.Velocity.Y = 12 // above escape velocity at 7000 km
	if _, err := ElementsFromState(s, testEpoch); err == nil {
		t.Error("hyperbolic state should be rejected")
	}
	if _, err := ElementsFromState(State{}, testEpoch); err == nil {
		t.Error("zero state should be rejected")
	}
}

func TestValidate(t *testing.T) {
	good := CircularLEO(550, 1, 0, 0, testEpoch)
	if err := good.Validate(); err != nil {
		t.Errorf("valid orbit rejected: %v", err)
	}
	bad := good
	bad.Eccentricity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("hyperbolic eccentricity accepted")
	}
	crash := good
	crash.SemiMajorKm = 6000
	if err := crash.Validate(); err == nil {
		t.Error("sub-surface orbit accepted")
	}
	tilted := good
	tilted.InclinationRad = 4
	if err := tilted.Validate(); err == nil {
		t.Error("inclination > π accepted")
	}
}

func TestPerigeeApogee(t *testing.T) {
	el := Elements{SemiMajorKm: 10000, Eccentricity: 0.2}
	if got := el.PerigeeAltKm(); math.Abs(got-(8000-EarthRadiusKm)) > 1e-9 {
		t.Errorf("perigee alt = %v", got)
	}
	if got := el.ApogeeAltKm(); math.Abs(got-(12000-EarthRadiusKm)) > 1e-9 {
		t.Errorf("apogee alt = %v", got)
	}
}

func TestAngularMomentumConservation(t *testing.T) {
	el := Elements{Epoch: testEpoch, SemiMajorKm: 9000, Eccentricity: 0.15,
		InclinationRad: 1.1, RAANRad: 0.4, ArgPerigeeRad: 2.0, MeanAnomalyRad: 0}
	h0 := el.StateAt(testEpoch).Position.Cross(el.StateAt(testEpoch).Velocity)
	for dt := time.Minute; dt < 3*time.Hour; dt += 17 * time.Minute {
		s := el.StateAt(testEpoch.Add(dt))
		h := s.Position.Cross(s.Velocity)
		if d := h.Sub(h0).Norm() / h0.Norm(); d > 1e-9 {
			t.Fatalf("angular momentum drifted by %v at +%v", d, dt)
		}
	}
}

func TestVisVivaEnergy(t *testing.T) {
	el := Elements{Epoch: testEpoch, SemiMajorKm: 12000, Eccentricity: 0.3,
		InclinationRad: 0.5, MeanAnomalyRad: 1}
	want := -EarthMuKm3S2 / (2 * el.SemiMajorKm)
	for dt := time.Duration(0); dt < 4*time.Hour; dt += 31 * time.Minute {
		s := el.StateAt(testEpoch.Add(dt))
		got := s.Velocity.NormSq()/2 - EarthMuKm3S2/s.Position.Norm()
		if math.Abs(got-want)/math.Abs(want) > 1e-9 {
			t.Fatalf("specific energy %v, want %v at +%v", got, want, dt)
		}
	}
}
