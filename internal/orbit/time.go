package orbit

import (
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// JulianDate returns the Julian date of t (UTC).
func JulianDate(t time.Time) float64 {
	t = t.UTC()
	y := t.Year()
	m := int(t.Month())
	d := t.Day()
	if m <= 2 {
		y--
		m += 12
	}
	a := y / 100
	b := 2 - a + a/4
	jd0 := math.Floor(365.25*float64(y+4716)) +
		math.Floor(30.6001*float64(m+1)) +
		float64(d) + float64(b) - 1524.5
	dayFrac := (float64(t.Hour()) +
		float64(t.Minute())/60 +
		(float64(t.Second())+float64(t.Nanosecond())/1e9)/3600) / 24
	return jd0 + dayFrac
}

// J2000 is the standard epoch 2000 January 1 12:00 TT (treated as UTC here).
var J2000 = time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)

// JulianCenturiesSinceJ2000 returns Julian centuries elapsed since J2000.
func JulianCenturiesSinceJ2000(t time.Time) float64 {
	return (JulianDate(t) - 2451545.0) / 36525.0
}

// GMST returns the Greenwich mean sidereal time at t, in radians in [0, 2π).
// It uses the IAU 1982 expression, which is accurate to well under an
// arcsecond over the decades around J2000.
func GMST(t time.Time) float64 {
	jd := JulianDate(t)
	tu := (jd - 2451545.0) / 36525.0
	// Seconds of sidereal time.
	gmstSec := 67310.54841 +
		(876600*3600+8640184.812866)*tu +
		0.093104*tu*tu -
		6.2e-6*tu*tu*tu
	gmstSec = math.Mod(gmstSec, 86400)
	if gmstSec < 0 {
		gmstSec += 86400
	}
	return gmstSec * (2 * math.Pi / 86400)
}

// ECIToECEF rotates an ECI position to ECEF at time t (rotation about the
// Z axis by GMST; polar motion and nutation are ignored).
func ECIToECEF(p vecmath.Vec3, t time.Time) vecmath.Vec3 {
	g := GMST(t)
	c, s := math.Cos(g), math.Sin(g)
	return vecmath.Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// ECEFToECI rotates an ECEF position to ECI at time t.
func ECEFToECI(p vecmath.Vec3, t time.Time) vecmath.Vec3 {
	g := GMST(t)
	c, s := math.Cos(g), math.Sin(g)
	return vecmath.Vec3{
		X: c*p.X - s*p.Y,
		Y: s*p.X + c*p.Y,
		Z: p.Z,
	}
}
