package orbit

import (
	"math"
	"testing"
	"time"
)

func BenchmarkSolveKepler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SolveKepler(float64(i%628)/100, 0.7)
	}
}

func BenchmarkStateAtTwoBody(b *testing.B) {
	el := CircularLEO(550, 53*math.Pi/180, 0.3, 0.7, testEpoch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el.StateAt(testEpoch.Add(time.Duration(i) * time.Second))
	}
}

func BenchmarkStateAtJ2(b *testing.B) {
	el := CircularLEO(550, 53*math.Pi/180, 0.3, 0.7, testEpoch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el.StateAtJ2(testEpoch.Add(time.Duration(i) * time.Second))
	}
}

func BenchmarkSGP4Propagate(b *testing.B) {
	tle := TLE{
		Epoch:        testEpoch,
		BStar:        1e-4,
		Inclination:  0.9,
		RAAN:         2,
		Eccentricity: 0.01,
		ArgPerigee:   1,
		MeanAnomaly:  0.5,
		MeanMotion:   15.2 * 2 * math.Pi / 1440,
	}
	prop, err := NewSGP4(tle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prop.PropagateMinutes(float64(i % 1440)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSunPosition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SunPositionECI(testEpoch.Add(time.Duration(i) * time.Minute))
	}
}

func BenchmarkShadow(b *testing.B) {
	el := CircularLEO(550, 0.9, 0, 0, testEpoch)
	s := el.StateAt(testEpoch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shadow(s.Position, testEpoch)
	}
}

func BenchmarkECEFToGeodetic(b *testing.B) {
	el := CircularLEO(550, 0.9, 0, 0, testEpoch)
	p := ECIToECEF(el.StateAt(testEpoch).Position, testEpoch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ECEFToGeodetic(p)
	}
}

func BenchmarkFindWindowsGroundStation(b *testing.B) {
	el := CircularLEO(550, 0, 0, 0, testEpoch)
	prop := J2Propagator{Elements: el}
	site := Geodetic{LatRad: 0, LonRad: 0}
	cond := GroundStationVisibility(prop, site, 5*math.Pi/180)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindWindows(cond, testEpoch, 6*time.Hour, time.Minute, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
