package orbit

import (
	"errors"
	"math"
	"testing"
	"time"

	"spacedc/internal/vecmath"
)

func TestFindWindowsSyntheticSquareWave(t *testing.T) {
	start := testEpoch
	// Condition true during minutes [10,20) and [40,50) of each hour.
	cond := func(tm time.Time) (bool, error) {
		m := tm.Sub(start).Minutes()
		mm := math.Mod(m, 60)
		return (mm >= 10 && mm < 20) || (mm >= 40 && mm < 50), nil
	}
	ws, err := FindWindows(cond, start, 2*time.Hour, time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4: %v", len(ws), ws)
	}
	for i, w := range ws {
		if d := w.Duration().Minutes(); math.Abs(d-10) > 0.1 {
			t.Errorf("window %d duration = %v min, want 10", i, d)
		}
	}
	// First window must start near +10 min.
	if off := ws[0].Start.Sub(start).Minutes(); math.Abs(off-10) > 0.1 {
		t.Errorf("first window starts at +%v min, want 10", off)
	}
}

func TestFindWindowsOpenAtEdges(t *testing.T) {
	start := testEpoch
	// True for the first 5 minutes and the last 5 minutes of a 30-min span.
	cond := func(tm time.Time) (bool, error) {
		m := tm.Sub(start).Minutes()
		return m < 5 || m >= 25, nil
	}
	ws, err := FindWindows(cond, start, 30*time.Minute, time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2: %v", len(ws), ws)
	}
	if !ws[0].Start.Equal(start) {
		t.Errorf("first window should start at span start")
	}
	if !ws[1].End.Equal(start.Add(30 * time.Minute)) {
		t.Errorf("last window should end at span end")
	}
}

func TestFindWindowsAlwaysAndNever(t *testing.T) {
	always := func(time.Time) (bool, error) { return true, nil }
	never := func(time.Time) (bool, error) { return false, nil }
	ws, err := FindWindows(always, testEpoch, time.Hour, time.Minute, time.Second)
	if err != nil || len(ws) != 1 || ws[0].Duration() != time.Hour {
		t.Errorf("always-true: %v, %v", ws, err)
	}
	ws, err = FindWindows(never, testEpoch, time.Hour, time.Minute, time.Second)
	if err != nil || len(ws) != 0 {
		t.Errorf("never-true: %v, %v", ws, err)
	}
}

func TestFindWindowsPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	cond := func(time.Time) (bool, error) { return false, boom }
	if _, err := FindWindows(cond, testEpoch, time.Hour, time.Minute, time.Second); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestMergeWindows(t *testing.T) {
	at := func(min int) time.Time { return testEpoch.Add(time.Duration(min) * time.Minute) }
	in := []Window{
		{at(30), at(40)},
		{at(0), at(10)},
		{at(5), at(15)},  // overlaps first
		{at(15), at(20)}, // touches merged end
	}
	out := MergeWindows(in)
	if len(out) != 2 {
		t.Fatalf("got %d windows, want 2: %v", len(out), out)
	}
	if !out[0].Start.Equal(at(0)) || !out[0].End.Equal(at(20)) {
		t.Errorf("merged[0] = %v, want [0,20)", out[0])
	}
	if !out[1].Start.Equal(at(30)) || !out[1].End.Equal(at(40)) {
		t.Errorf("merged[1] = %v, want [30,40)", out[1])
	}
	if MergeWindows(nil) != nil {
		t.Error("merging nothing should give nil")
	}
}

func TestGroundStationPassDuration(t *testing.T) {
	// A 550 km satellite passing directly over a station: single-pass
	// duration above 5° elevation is roughly 6–9 minutes.
	epoch := testEpoch
	el := CircularLEO(550, 0, 0, 0, epoch) // equatorial orbit
	site := Geodetic{LatRad: 0, LonRad: 0}
	prop := J2Propagator{Elements: el}

	ws, err := FindWindows(GroundStationVisibility(prop, site, 5*math.Pi/180),
		epoch, 24*time.Hour, 30*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("equatorial satellite never passes equatorial station")
	}
	for i, w := range ws {
		if d := w.Duration().Minutes(); d < 4 || d > 12 {
			t.Errorf("pass %d duration = %.1f min, want 4–12", i, d)
		}
	}
	// The satellite laps the station roughly every ~101 min relative
	// period... just require several passes per day.
	if len(ws) < 5 {
		t.Errorf("only %d passes in 24 h, want several", len(ws))
	}
}

func TestInterSatelliteVisibilityRing(t *testing.T) {
	// Two satellites in the same circular orbit separated by 5.6° (64-sat
	// ring): always visible. Separated by 180°: never visible.
	el0 := CircularLEO(550, 53*math.Pi/180, 0, 0, testEpoch)
	elNear := CircularLEO(550, 53*math.Pi/180, 0, 2*math.Pi/64, testEpoch)
	elFar := CircularLEO(550, 53*math.Pi/180, 0, math.Pi, testEpoch)

	nearCond := InterSatelliteVisibility(J2Propagator{el0}, J2Propagator{elNear}, AtmosphereGrazeKm)
	farCond := InterSatelliteVisibility(J2Propagator{el0}, J2Propagator{elFar}, AtmosphereGrazeKm)

	for dt := time.Duration(0); dt < 2*time.Hour; dt += 5 * time.Minute {
		tm := testEpoch.Add(dt)
		if ok, err := nearCond(tm); err != nil || !ok {
			t.Errorf("adjacent ring satellites lost LOS at +%v (err %v)", dt, err)
		}
		if ok, err := farCond(tm); err != nil || ok {
			t.Errorf("antipodal satellites gained LOS at +%v (err %v)", dt, err)
		}
	}
}

func TestThreeGEOCoverLEO(t *testing.T) {
	// The Fig 15 claim: 3 GEO SµDCs spaced 120° apart give every LEO
	// satellite line of sight to at least one at all times.
	epoch := testEpoch
	geos := []Propagator{
		J2Propagator{Geostationary(0, epoch)},
		J2Propagator{Geostationary(2*math.Pi/3, epoch)},
		J2Propagator{Geostationary(4*math.Pi/3, epoch)},
	}
	leos := []Elements{
		CircularLEO(550, 53*math.Pi/180, 0, 0, epoch),
		CircularLEO(550, 97.6*math.Pi/180, 1.0, 2.5, epoch), // SSO-like polar
		CircularLEO(550, 0, 0, 1.1, epoch),                  // equatorial
	}
	for i, leo := range leos {
		cond := AnyVisible(J2Propagator{leo}, geos, AtmosphereGrazeKm)
		gap, err := CoverageGap(cond, epoch, 24*time.Hour, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if gap > 0 {
			t.Errorf("LEO %d: coverage gap %v, want continuous coverage", i, gap)
		}
	}
}

func TestSingleGEODoesNotCoverLEO(t *testing.T) {
	// Sanity check of the same machinery: one GEO cannot cover a LEO
	// satellite around its whole orbit.
	epoch := testEpoch
	geo := []Propagator{J2Propagator{Geostationary(0, epoch)}}
	leo := CircularLEO(550, 53*math.Pi/180, 0, 0, epoch)
	cond := AnyVisible(J2Propagator{leo}, geo, AtmosphereGrazeKm)
	gap, err := CoverageGap(cond, epoch, 3*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if gap == 0 {
		t.Error("single GEO should leave coverage gaps for LEO")
	}
}

func TestContactTimeMergesStations(t *testing.T) {
	epoch := testEpoch
	el := CircularLEO(550, 0, 0, 0, epoch)
	prop := J2Propagator{Elements: el}
	// Two co-located stations must not double-count contact.
	site := Geodetic{LatRad: 0, LonRad: 0}
	one, err := ContactTime(prop, []Geodetic{site}, 5*math.Pi/180, epoch, 6*time.Hour, el.Period())
	if err != nil {
		t.Fatal(err)
	}
	two, err := ContactTime(prop, []Geodetic{site, site}, 5*math.Pi/180, epoch, 6*time.Hour, el.Period())
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalContact != two.TotalContact {
		t.Errorf("duplicate stations changed contact: %v vs %v", one.TotalContact, two.TotalContact)
	}
	if one.PerRevAvg <= 0 {
		t.Error("per-revolution contact should be positive for equatorial pass")
	}
}

func TestSlantRange(t *testing.T) {
	a := FixedPoint{Pos: vecmath.Vec3{X: 7000}}
	b := FixedPoint{Pos: vecmath.Vec3{X: 7000, Y: 100}}
	d, err := SlantRangeKm(a, b, testEpoch)
	if err != nil || math.Abs(d-100) > 1e-9 {
		t.Errorf("slant range = %v (err %v), want 100", d, err)
	}
}

func TestGroundTrackInclinationBound(t *testing.T) {
	// Ground track latitude never exceeds orbital inclination.
	el := CircularLEO(550, 53*math.Pi/180, 0.7, 0, testEpoch)
	pts, err := GroundTrack(J2Propagator{el}, testEpoch, 2*el.Period(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 100 {
		t.Fatalf("too few track points: %d", len(pts))
	}
	maxLat := 0.0
	for _, p := range pts {
		if l := math.Abs(p.LatDeg()); l > maxLat {
			maxLat = l
		}
	}
	if maxLat > 53.5 {
		t.Errorf("max ground track latitude %v° exceeds inclination", maxLat)
	}
	if maxLat < 50 {
		t.Errorf("max ground track latitude %v° too low for 53° orbit", maxLat)
	}
}

func TestGroundTrackAltitude(t *testing.T) {
	el := CircularLEO(550, 1, 0, 0, testEpoch)
	pts, err := GroundTrack(J2Propagator{el}, testEpoch, 30*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// Geodetic altitude differs from spherical altitude by up to ~21 km
		// (flattening).
		if p.AltKm < 520 || p.AltKm > 580 {
			t.Errorf("track altitude %v km, want ≈550", p.AltKm)
		}
	}
}

func TestSwathWidth(t *testing.T) {
	// Wider half-angle, wider swath; zero at zero angle.
	if SwathWidthKm(550, 0) != 0 {
		t.Error("zero half-angle should give zero swath")
	}
	narrow := SwathWidthKm(550, 5*math.Pi/180)
	wide := SwathWidthKm(550, 30*math.Pi/180)
	if narrow <= 0 || wide <= narrow {
		t.Errorf("swath not monotonic: %v, %v", narrow, wide)
	}
	// Small-angle approximation: swath ≈ 2·h·tan(θ) ≈ 96 km at 5°.
	if math.Abs(narrow-96) > 10 {
		t.Errorf("5° swath at 550 km = %v km, want ≈96", narrow)
	}
}

func TestCoverageGapCountsLongestRun(t *testing.T) {
	start := testEpoch
	// False during [10,25) minutes, else true.
	cond := func(tm time.Time) (bool, error) {
		m := tm.Sub(start).Minutes()
		return !(m >= 10 && m < 25), nil
	}
	gap, err := CoverageGap(cond, start, time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap.Minutes()-15) > 1.5 {
		t.Errorf("gap = %v, want ≈15 min", gap)
	}
}
