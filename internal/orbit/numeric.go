package orbit

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// NumericalPropagator integrates the equations of motion directly with a
// fixed-step RK4: point-mass gravity, optionally the J2 oblateness
// acceleration, and optionally atmospheric drag. It is the independent
// check on the analytic propagators — Kepler, the secular-J2 model, and
// SGP4 are all validated against it in the tests — and the tool for
// studying effects the analytic models average away.
type NumericalPropagator struct {
	InitialState State
	Epoch        time.Time
	// StepSec is the integration step (default 10 s).
	StepSec float64
	// IncludeJ2 adds the oblateness acceleration.
	IncludeJ2 bool
	// Drag, when non-nil, adds atmospheric drag for the body.
	Drag *DragBody

	// Integration cache: the propagator walks forward from the last
	// evaluated state when possible.
	curTime  time.Time
	curState State
	primed   bool
}

// NewNumericalPropagator builds a propagator from an initial state.
func NewNumericalPropagator(s State, epoch time.Time) *NumericalPropagator {
	return &NumericalPropagator{InitialState: s, Epoch: epoch, StepSec: 10, IncludeJ2: true}
}

// accel returns the total acceleration (km/s²) at position r with
// velocity v.
func (p *NumericalPropagator) accel(r, v vecmath.Vec3) vecmath.Vec3 {
	rn := r.Norm()
	a := r.Scale(-EarthMuKm3S2 / (rn * rn * rn))

	if p.IncludeJ2 {
		// Standard J2 acceleration in ECI.
		factor := -1.5 * EarthJ2 * EarthMuKm3S2 * EarthRadiusKm * EarthRadiusKm / math.Pow(rn, 5)
		z2r2 := (r.Z * r.Z) / (rn * rn)
		a = a.Add(vecmath.Vec3{
			X: factor * r.X * (1 - 5*z2r2),
			Y: factor * r.Y * (1 - 5*z2r2),
			Z: factor * r.Z * (3 - 5*z2r2),
		})
	}

	if p.Drag != nil {
		alt := rn - EarthRadiusKm
		rho := AtmosphereDensity(alt) * 1e9 // kg/km³
		// Velocity relative to the rotating atmosphere.
		atmVel := vecmath.Vec3{X: -EarthRotationRateRadS * r.Y, Y: EarthRotationRateRadS * r.X}
		rel := v.Sub(atmVel)
		speed := rel.Norm()
		bc := p.Drag.BallisticCoefficient() * 1e-6 // km²/kg
		a = a.Add(rel.Scale(-0.5 * rho * speed * bc))
	}
	return a
}

// rk4Step advances (r, v) by dt seconds.
func (p *NumericalPropagator) rk4Step(s State, dt float64) State {
	type deriv struct {
		dr, dv vecmath.Vec3
	}
	f := func(r, v vecmath.Vec3) deriv {
		return deriv{dr: v, dv: p.accel(r, v)}
	}
	k1 := f(s.Position, s.Velocity)
	k2 := f(s.Position.Add(k1.dr.Scale(dt/2)), s.Velocity.Add(k1.dv.Scale(dt/2)))
	k3 := f(s.Position.Add(k2.dr.Scale(dt/2)), s.Velocity.Add(k2.dv.Scale(dt/2)))
	k4 := f(s.Position.Add(k3.dr.Scale(dt)), s.Velocity.Add(k3.dv.Scale(dt)))

	combine := func(a, b, c, d vecmath.Vec3) vecmath.Vec3 {
		return a.Add(b.Scale(2)).Add(c.Scale(2)).Add(d).Scale(dt / 6)
	}
	return State{
		Position: s.Position.Add(combine(k1.dr, k2.dr, k3.dr, k4.dr)),
		Velocity: s.Velocity.Add(combine(k1.dv, k2.dv, k3.dv, k4.dv)),
	}
}

// State implements Propagator: it integrates from the nearest cached state
// to time t. Backward propagation restarts from the epoch.
func (p *NumericalPropagator) State(t time.Time) (State, error) {
	if p.StepSec <= 0 {
		return State{}, fmt.Errorf("orbit: non-positive integration step %v", p.StepSec)
	}
	if p.InitialState.Position.IsZero() {
		return State{}, fmt.Errorf("orbit: numerical propagator needs an initial state")
	}
	if !p.primed || t.Before(p.curTime) {
		p.curTime = p.Epoch
		p.curState = p.InitialState
		p.primed = true
	}
	remaining := t.Sub(p.curTime).Seconds()
	for remaining > 1e-9 {
		dt := p.StepSec
		if remaining < dt {
			dt = remaining
		}
		p.curState = p.rk4Step(p.curState, dt)
		remaining -= dt
		if p.curState.Position.Norm() < EarthRadiusKm {
			return State{}, fmt.Errorf("orbit: numerical propagation hit the surface")
		}
	}
	p.curTime = t
	return p.curState, nil
}

// SpecificEnergy returns the orbit's specific mechanical energy at the
// current state (km²/s²) — conserved exactly in two-body motion, a good
// integration-quality diagnostic.
func SpecificEnergy(s State) float64 {
	return s.Velocity.NormSq()/2 - EarthMuKm3S2/s.Position.Norm()
}
