package orbit_test

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
)

// Example propagates a circular LEO orbit and reports its basics.
func Example() {
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	el := orbit.CircularLEO(550, 53*math.Pi/180, 0, 0, epoch)
	fmt.Printf("period: %v\n", el.Period().Round(time.Second))
	s := el.StateAt(epoch)
	fmt.Printf("speed: %.3f km/s\n", s.Velocity.Norm())
	// Output:
	// period: 1h35m39s
	// speed: 7.585 km/s
}

// ExampleSunSynchronousInclination reproduces the textbook SSO design
// number for a 700 km orbit.
func ExampleSunSynchronousInclination() {
	inc := orbit.SunSynchronousInclination(700)
	fmt.Printf("%.1f°\n", inc*180/math.Pi)
	// Output: 98.2°
}

// ExampleGraveyardDeltaV shows why GEO retirement re-orbits instead of
// deorbiting.
func ExampleGraveyardDeltaV() {
	fmt.Printf("graveyard: %.0f m/s, deorbit: %.0f m/s\n",
		orbit.GraveyardDeltaV(),
		orbit.DisposalDeltaV(orbit.GeostationaryAltitudeKm, 50))
	// Output: graveyard: 11 m/s, deorbit: 1493 m/s
}

// ExampleFindWindows finds ground-station passes for an equatorial orbit.
func ExampleFindWindows() {
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	el := orbit.CircularLEO(550, 0, 0, 0, epoch)
	prop := orbit.J2Propagator{Elements: el}
	site := orbit.Geodetic{LatRad: 0, LonRad: 0}
	windows, err := orbit.FindWindows(
		orbit.GroundStationVisibility(prop, site, 5*math.Pi/180),
		epoch, 6*time.Hour, 30*time.Second, time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d passes in 6 h\n", len(windows))
	// Output: 3 passes in 6 h
}
