// Package orbit implements the orbital mechanics substrate for the space
// microdatacenter study: Keplerian two-body and J2-perturbed propagation, a
// simplified SGP4 propagator with TLE parsing, solar position and eclipse
// geometry, ground tracks, and line-of-sight / in-view-period computation
// between satellites and between satellites and ground stations.
//
// Conventions: positions and velocities are in the Earth-centered inertial
// (ECI, true-equator mean-equinox) frame, kilometers and km/s; angles are
// radians; times are UTC time.Time values (the UT1–UTC distinction is far
// below the fidelity this study needs).
package orbit

import (
	"math"

	"spacedc/internal/vecmath"
)

// Physical constants (WGS-72 values, the set SGP4 is defined against; the
// difference from WGS-84 is irrelevant at this study's fidelity).
const (
	// EarthRadiusKm is Earth's equatorial radius in km.
	EarthRadiusKm = 6378.135
	// EarthMuKm3S2 is Earth's gravitational parameter in km³/s².
	EarthMuKm3S2 = 398600.8
	// EarthJ2 is the second zonal harmonic of Earth's gravity field.
	EarthJ2 = 1.082616e-3
	// EarthFlattening is the WGS-84 flattening factor used for geodetic
	// coordinates.
	EarthFlattening = 1 / 298.257223563
	// EarthRotationRateRadS is Earth's sidereal rotation rate in rad/s.
	EarthRotationRateRadS = 7.2921158553e-5
	// GeostationaryAltitudeKm is the altitude of a geostationary orbit.
	GeostationaryAltitudeKm = 35786.0
	// AtmosphereGrazeKm is the altitude below which an optical ISL path is
	// considered blocked or badly degraded by the atmosphere. Paths that
	// graze below ~100 km hit dense atmosphere; the paper notes turbulence
	// fading before outright blockage.
	AtmosphereGrazeKm = 100.0
	// AstronomicalUnitKm is one AU in km.
	AstronomicalUnitKm = 149597870.7
	// SunRadiusKm is the solar photospheric radius in km.
	SunRadiusKm = 695700.0
)

// GeostationaryRadiusKm returns the geocentric radius of GEO in km.
func GeostationaryRadiusKm() float64 { return EarthRadiusKm + GeostationaryAltitudeKm }

// Geodetic is a position on or above the WGS-84 ellipsoid.
type Geodetic struct {
	LatRad float64 // geodetic latitude, radians, +north
	LonRad float64 // longitude, radians, +east, in (-π, π]
	AltKm  float64 // height above the ellipsoid, km
}

// LatDeg returns the latitude in degrees.
func (g Geodetic) LatDeg() float64 { return g.LatRad * 180 / math.Pi }

// LonDeg returns the longitude in degrees.
func (g Geodetic) LonDeg() float64 { return g.LonRad * 180 / math.Pi }

// ECEF converts the geodetic position to Earth-centered Earth-fixed
// Cartesian coordinates in km.
func (g Geodetic) ECEF() vecmath.Vec3 {
	sinLat := math.Sin(g.LatRad)
	cosLat := math.Cos(g.LatRad)
	e2 := EarthFlattening * (2 - EarthFlattening)
	n := EarthRadiusKm / math.Sqrt(1-e2*sinLat*sinLat)
	return vecmath.Vec3{
		X: (n + g.AltKm) * cosLat * math.Cos(g.LonRad),
		Y: (n + g.AltKm) * cosLat * math.Sin(g.LonRad),
		Z: (n*(1-e2) + g.AltKm) * sinLat,
	}
}

// ECEFToGeodetic converts an ECEF position in km to geodetic coordinates
// using Bowring's iteration (converges in a handful of rounds for any
// point outside Earth's core).
func ECEFToGeodetic(p vecmath.Vec3) Geodetic {
	e2 := EarthFlattening * (2 - EarthFlattening)
	lon := math.Atan2(p.Y, p.X)
	rho := math.Hypot(p.X, p.Y)
	// Initial guess assumes spherical Earth.
	lat := math.Atan2(p.Z, rho*(1-e2))
	var alt float64
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := EarthRadiusKm / math.Sqrt(1-e2*sinLat*sinLat)
		alt = rho/math.Cos(lat) - n
		newLat := math.Atan2(p.Z, rho*(1-e2*n/(n+alt)))
		if math.Abs(newLat-lat) < 1e-12 {
			lat = newLat
			break
		}
		lat = newLat
	}
	return Geodetic{LatRad: lat, LonRad: lon, AltKm: alt}
}

// LineOfSight reports whether two ECI (or consistently ECEF) positions in km
// can see each other without the sight line passing below grazeAltKm above
// Earth's (spherical) surface. Pass 0 to test against the hard surface.
func LineOfSight(a, b vecmath.Vec3, grazeAltKm float64) bool {
	blockR := EarthRadiusKm + grazeAltKm
	d := b.Sub(a)
	dd := d.NormSq()
	if dd == 0 {
		return true
	}
	// Parameter of the closest point on segment a→b to the geocenter.
	t := -a.Dot(d) / dd
	if t <= 0 {
		return a.Norm() > blockR
	}
	if t >= 1 {
		return b.Norm() > blockR
	}
	closest := a.Add(d.Scale(t))
	return closest.Norm() > blockR
}

// ElevationAngle returns the elevation in radians of target above the local
// horizon at the observer position (both ECEF, km). Negative values mean
// below the horizon. The observer's zenith is approximated by its geocentric
// radial, which is accurate to a fraction of a degree for ground stations.
func ElevationAngle(observer, target vecmath.Vec3) float64 {
	los := target.Sub(observer)
	if los.IsZero() || observer.IsZero() {
		return 0
	}
	zenith := observer.Unit()
	s := los.Unit().Dot(zenith)
	return math.Asin(vecmath.Clamp(s, -1, 1))
}
