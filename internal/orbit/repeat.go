package orbit

import (
	"fmt"
	"math"
)

// Repeat ground track design: EO missions that advertise fixed revisit
// cadences (Table 1) fly orbits whose ground track repeats after exactly
// j revolutions in k nodal days, so the same scenes come back under the
// same viewing geometry. This file finds the altitude that closes a
// (revolutions, days) resonance, including the J2 feedback on both the
// orbit and Earth's apparent rotation.

// RepeatGroundTrack describes a j revolutions / k days resonance.
type RepeatGroundTrack struct {
	Revolutions int // j: orbits per repeat cycle
	Days        int // k: nodal days per repeat cycle
}

// Validate checks the resonance is sensible for LEO: between ~12 and ~16
// revolutions per day.
func (r RepeatGroundTrack) Validate() error {
	if r.Revolutions <= 0 || r.Days <= 0 {
		return fmt.Errorf("orbit: non-positive resonance %d/%d", r.Revolutions, r.Days)
	}
	ratio := float64(r.Revolutions) / float64(r.Days)
	if ratio < 11 || ratio > 17 {
		return fmt.Errorf("orbit: %v rev/day is outside the LEO band", ratio)
	}
	return nil
}

// SolveAltitude returns the circular-orbit altitude (km) at inclination
// incRad whose ground track repeats after the resonance, iterating the J2
// corrections to convergence.
func (r RepeatGroundTrack) SolveAltitude(incRad float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	// The track repeats when j nodal periods span k nodal days:
	// j·(2π/ωorbit) = k·(2π/(ωE − Ω̇)), i.e. the satellite completes j
	// revolutions relative to the rotating, node-regressing Earth.
	target := float64(r.Revolutions) / float64(r.Days)

	alt := 550.0 // initial guess
	for iter := 0; iter < 100; iter++ {
		el := CircularLEO(alt, incRad, 0, 0, J2000)
		rates := el.J2SecularRates()
		// Effective orbital rate: perturbed mean motion plus apsidal
		// drift (argument-of-latitude rate for a circular orbit).
		orbital := rates.MeanAnomalyRadS + rates.ArgPerigeeRadS
		earth := EarthRotationRateRadS - rates.RAANRadS
		got := orbital / earth
		if math.Abs(got-target) < 1e-10 {
			return alt, nil
		}
		// Newton step via n ∝ a^(-3/2): d(ratio)/d(alt) ≈ -1.5·ratio/a.
		a := EarthRadiusKm + alt
		slope := -1.5 * got / a
		alt -= (got - target) / slope * 1.0
		if alt < 150 || alt > 2500 {
			return 0, fmt.Errorf("orbit: no LEO altitude closes %d/%d at this inclination",
				r.Revolutions, r.Days)
		}
	}
	return 0, fmt.Errorf("orbit: repeat-track solve did not converge")
}

// GroundTrackShiftKm returns the westward equatorial shift between
// successive ascending passes for a circular orbit at altKm, incRad — the
// spacing a sensor swath must cover for gap-free mapping.
func GroundTrackShiftKm(altKm, incRad float64) float64 {
	el := CircularLEO(altKm, incRad, 0, 0, J2000)
	rates := el.J2SecularRates()
	orbital := rates.MeanAnomalyRadS + rates.ArgPerigeeRadS
	earth := EarthRotationRateRadS - rates.RAANRadS
	period := 2 * math.Pi / orbital
	return earth * period * EarthRadiusKm
}
