package orbit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestParseTLENeverPanics throws structured garbage at the TLE parser:
// every call must return an error or a TLE, never panic.
func TestParseTLENeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l1 := checksummedTestLine("1 25544U 98067A   26182.50000000  .00016717  00000-0  10270-3 0  9000")
	l2 := checksummedTestLine("2 25544  51.6400 208.9163 0006703  69.9862  25.2906 15.49560000000000")
	valid := l1 + "\n" + l2

	variants := []string{
		"", "\n\n\n", "1\n2", strings.Repeat("1", 69) + "\n" + strings.Repeat("2", 69),
		valid[:50], valid + "\nextra line\nanother",
	}
	// Mutations of the valid set.
	for i := 0; i < 200; i++ {
		mut := []byte(valid)
		for j := 0; j < 1+rng.Intn(5); j++ {
			mut[rng.Intn(len(mut))] = byte(32 + rng.Intn(95))
		}
		variants = append(variants, string(mut))
	}
	for vi, v := range variants {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ParseTLE panicked on variant %d: %v", vi, r)
				}
			}()
			if tle, err := ParseTLE(v); err == nil {
				// Whatever parsed must at least be propagatable or
				// rejected by SGP4 — not crash it.
				if _, err := NewSGP4(tle); err == nil {
					prop, _ := NewSGP4(tle)
					_, _ = prop.PropagateMinutes(10)
				}
			}
		}()
	}
}

// checksummedTestLine duplicates the test helper from sgp4_test without
// colliding with it (separate file, same package — reuse via a distinct
// name to keep both readable).
func checksummedTestLine(line string) string {
	if len(line) > 68 {
		line = line[:68]
	}
	for len(line) < 68 {
		line += " "
	}
	sum := 0
	for _, c := range line {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return line + string(rune('0'+sum%10))
}

// TestElementsFromStateNeverPanics drives the element recovery with
// degenerate and extreme states.
func TestElementsFromStateNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		s := State{}
		s.Position.X = (rng.Float64() - 0.5) * 1e5
		s.Position.Y = (rng.Float64() - 0.5) * 1e5
		s.Position.Z = (rng.Float64() - 0.5) * 1e5
		s.Velocity.X = (rng.Float64() - 0.5) * 20
		s.Velocity.Y = (rng.Float64() - 0.5) * 20
		s.Velocity.Z = (rng.Float64() - 0.5) * 20
		el, err := ElementsFromState(s, epoch)
		if err != nil {
			continue
		}
		// Recovered elements must be finite and propagatable.
		if el.Validate() == nil {
			st := el.StateAt(epoch.Add(time.Hour))
			if st.Position.Norm() <= 0 {
				t.Fatalf("iteration %d: degenerate propagation from %+v", i, el)
			}
		}
	}
}

// TestSolveKeplerExtremes drives the solver at pathological inputs.
func TestSolveKeplerExtremes(t *testing.T) {
	for _, m := range []float64{0, 1e-18, -1e-18, 3.14159265, 6.2831853, 1e6, -1e6} {
		for _, e := range []float64{0, 1e-12, 0.5, 0.999999} {
			ea := SolveKepler(m, e)
			if resid := ea - e*math.Sin(ea) - m; resid > 1e-6 || resid < -1e-6 {
				t.Errorf("M=%v e=%v: residual %v", m, e, resid)
			}
		}
	}
}
