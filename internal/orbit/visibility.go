package orbit

import (
	"time"

	"spacedc/internal/vecmath"
)

// Window is a contiguous interval during which a visibility condition holds.
type Window struct {
	Start, End time.Time
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// Condition is a time-dependent predicate, e.g. "satellite above 10°
// elevation from this ground station" or "LOS exists between satellites".
type Condition func(t time.Time) (bool, error)

// FindWindows scans [start, start+span] with the given coarse step and
// refines each transition by bisection to within tol, returning all windows
// where cond holds. This is the numerical in-view-period method of Lawton
// (1987): coarse sampling assumes the condition doesn't flicker faster than
// the step.
func FindWindows(cond Condition, start time.Time, span, step, tol time.Duration) ([]Window, error) {
	if step <= 0 {
		step = 30 * time.Second
	}
	if tol <= 0 {
		tol = time.Second
	}
	end := start.Add(span)

	var windows []Window
	prevT := start
	prev, err := cond(prevT)
	if err != nil {
		return nil, err
	}
	var openStart time.Time
	open := prev
	if open {
		openStart = start
	}

	for t := start.Add(step); !t.After(end); t = t.Add(step) {
		cur, err := cond(t)
		if err != nil {
			return nil, err
		}
		if cur != prev {
			cross, err := bisectTransition(cond, prevT, t, prev, tol)
			if err != nil {
				return nil, err
			}
			if cur {
				openStart = cross
				open = true
			} else {
				windows = append(windows, Window{Start: openStart, End: cross})
				open = false
			}
		}
		prev, prevT = cur, t
	}
	if open {
		windows = append(windows, Window{Start: openStart, End: end})
	}
	return windows, nil
}

// bisectTransition locates the condition flip between t0 (state s0) and t1
// (state !s0) to within tol.
func bisectTransition(cond Condition, t0, t1 time.Time, s0 bool, tol time.Duration) (time.Time, error) {
	for t1.Sub(t0) > tol {
		mid := t0.Add(t1.Sub(t0) / 2)
		s, err := cond(mid)
		if err != nil {
			return time.Time{}, err
		}
		if s == s0 {
			t0 = mid
		} else {
			t1 = mid
		}
	}
	return t1, nil
}

// GroundStationVisibility returns a Condition that is true when prop's
// satellite is above minElevRad as seen from the geodetic site.
func GroundStationVisibility(prop Propagator, site Geodetic, minElevRad float64) Condition {
	siteECEF := site.ECEF()
	return func(t time.Time) (bool, error) {
		s, err := prop.State(t)
		if err != nil {
			return false, err
		}
		satECEF := ECIToECEF(s.Position, t)
		return ElevationAngle(siteECEF, satECEF) >= minElevRad, nil
	}
}

// InterSatelliteVisibility returns a Condition that is true when the two
// satellites have line of sight not blocked by Earth (plus the atmospheric
// grazing margin grazeKm).
func InterSatelliteVisibility(a, b Propagator, grazeKm float64) Condition {
	return func(t time.Time) (bool, error) {
		sa, err := a.State(t)
		if err != nil {
			return false, err
		}
		sb, err := b.State(t)
		if err != nil {
			return false, err
		}
		return LineOfSight(sa.Position, sb.Position, grazeKm), nil
	}
}

// ContactStats summarizes ground-contact opportunity for one satellite and
// a set of stations over an analysis span.
type ContactStats struct {
	Windows      []Window
	TotalContact time.Duration
	PerRevAvg    time.Duration // average contact time per orbital revolution
}

// ContactTime computes visibility windows from prop to each site (any site
// counts — overlapping windows from different stations are merged) and
// averages contact per revolution using the orbit period.
func ContactTime(prop Propagator, sites []Geodetic, minElevRad float64, start time.Time, span time.Duration, period time.Duration) (ContactStats, error) {
	var all []Window
	for _, site := range sites {
		w, err := FindWindows(GroundStationVisibility(prop, site, minElevRad), start, span, 30*time.Second, time.Second)
		if err != nil {
			return ContactStats{}, err
		}
		all = append(all, w...)
	}
	merged := MergeWindows(all)
	var total time.Duration
	for _, w := range merged {
		total += w.Duration()
	}
	revs := float64(span) / float64(period)
	stats := ContactStats{Windows: merged, TotalContact: total}
	if revs > 0 {
		stats.PerRevAvg = time.Duration(float64(total) / revs)
	}
	return stats, nil
}

// MergeWindows merges overlapping or touching windows and returns them
// sorted by start time.
func MergeWindows(ws []Window) []Window {
	if len(ws) == 0 {
		return nil
	}
	sorted := make([]Window, len(ws))
	copy(sorted, ws)
	// Insertion sort: window lists are short.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Start.Before(sorted[j-1].Start); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := []Window{sorted[0]}
	for _, w := range sorted[1:] {
		last := &out[len(out)-1]
		if !w.Start.After(last.End) {
			if w.End.After(last.End) {
				last.End = w.End
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// CoverageGap reports the longest interval within [start, start+span] in
// which cond is false, scanning at the given step (no refinement). A zero
// result means cond held at every sample.
func CoverageGap(cond Condition, start time.Time, span, step time.Duration) (time.Duration, error) {
	if step <= 0 {
		step = 30 * time.Second
	}
	var longest, current time.Duration
	for dt := time.Duration(0); dt <= span; dt += step {
		ok, err := cond(start.Add(dt))
		if err != nil {
			return 0, err
		}
		if ok {
			current = 0
			continue
		}
		current += step
		if current > longest {
			longest = current
		}
	}
	return longest, nil
}

// AnyVisible returns a Condition true when at least one of the targets has
// line of sight to the observer satellite (used for the GEO SµDC coverage
// experiment: every EO satellite must see ≥1 of the 3 GEO SµDCs).
func AnyVisible(observer Propagator, targets []Propagator, grazeKm float64) Condition {
	return func(t time.Time) (bool, error) {
		so, err := observer.State(t)
		if err != nil {
			return false, err
		}
		for _, tgt := range targets {
			st, err := tgt.State(t)
			if err != nil {
				return false, err
			}
			if LineOfSight(so.Position, st.Position, grazeKm) {
				return true, nil
			}
		}
		return false, nil
	}
}

// SlantRangeKm returns the instantaneous distance between two propagators'
// satellites at time t, in km.
func SlantRangeKm(a, b Propagator, t time.Time) (float64, error) {
	sa, err := a.State(t)
	if err != nil {
		return 0, err
	}
	sb, err := b.State(t)
	if err != nil {
		return 0, err
	}
	return sa.Position.DistanceTo(sb.Position), nil
}

// FixedPoint is a Propagator for a motionless ECI point — useful in tests.
type FixedPoint struct{ Pos vecmath.Vec3 }

// State implements Propagator.
func (f FixedPoint) State(time.Time) (State, error) {
	return State{Position: f.Pos}, nil
}
