package orbit

import (
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// SubPoint returns the geodetic point directly beneath an ECI position at
// time t (the "sub-satellite point"), including the satellite's altitude.
func SubPoint(posECI vecmath.Vec3, t time.Time) Geodetic {
	return ECEFToGeodetic(ECIToECEF(posECI, t))
}

// GroundTrackPoint is one sample of a ground track.
type GroundTrackPoint struct {
	Time time.Time
	Geodetic
}

// Propagator produces ECI states as a function of time. Elements (via
// J2Propagator), SGP4, and test doubles all satisfy it.
type Propagator interface {
	// State returns the ECI state at t. Implementations return an error
	// when the orbit cannot be evaluated (e.g. decay).
	State(t time.Time) (State, error)
}

// J2Propagator adapts Elements to the Propagator interface using secular-J2
// propagation.
type J2Propagator struct {
	Elements Elements
}

// State implements Propagator.
func (p J2Propagator) State(t time.Time) (State, error) {
	if err := p.Elements.Validate(); err != nil {
		return State{}, err
	}
	return p.Elements.StateAtJ2(t), nil
}

// TwoBodyPropagator adapts Elements to the Propagator interface using pure
// Keplerian propagation (no perturbations).
type TwoBodyPropagator struct {
	Elements Elements
}

// State implements Propagator.
func (p TwoBodyPropagator) State(t time.Time) (State, error) {
	if err := p.Elements.Validate(); err != nil {
		return State{}, err
	}
	return p.Elements.StateAt(t), nil
}

// State implements Propagator for SGP4.
func (p *SGP4) State(t time.Time) (State, error) { return p.StateAt(t) }

// GroundTrack samples the sub-satellite point of prop from start for span at
// the given step.
func GroundTrack(prop Propagator, start time.Time, span, step time.Duration) ([]GroundTrackPoint, error) {
	if step <= 0 {
		step = time.Minute
	}
	var points []GroundTrackPoint
	for dt := time.Duration(0); dt <= span; dt += step {
		t := start.Add(dt)
		s, err := prop.State(t)
		if err != nil {
			return points, err
		}
		points = append(points, GroundTrackPoint{Time: t, Geodetic: SubPoint(s.Position, t)})
	}
	return points, nil
}

// SwathWidthKm returns the cross-track ground swath width (km) visible from
// altitude altKm with a sensor half-angle of halfAngleRad, clamped to the
// horizon. This feeds the imaging coverage model.
func SwathWidthKm(altKm, halfAngleRad float64) float64 {
	if halfAngleRad <= 0 || altKm <= 0 {
		return 0
	}
	// Earth-central angle of the swath edge, via the law of sines in the
	// Earth-center / satellite / target triangle: the off-nadir angle η
	// maps to central angle λ = asin(r·sin(η)/re) − η at the near
	// intersection. Beyond the horizon the asin saturates.
	re := EarthRadiusKm
	r := re + altKm
	sinEta := vecmath.Clamp((r/re)*math.Sin(halfAngleRad), -1, 1)
	lam := math.Asin(sinEta) - halfAngleRad
	if lam < 0 {
		lam = 0
	}
	return 2 * lam * re
}
