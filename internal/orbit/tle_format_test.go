package orbit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTLE() TLE {
	return TLE{
		Name:         "TESTSAT",
		NoradID:      "25544",
		Epoch:        time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC),
		BStar:        6.6816e-5,
		Inclination:  51.64 * math.Pi / 180,
		RAAN:         208.9163 * math.Pi / 180,
		Eccentricity: 0.0006703,
		ArgPerigee:   69.9862 * math.Pi / 180,
		MeanAnomaly:  25.2906 * math.Pi / 180,
		MeanMotion:   15.4956 * 2 * math.Pi / 1440,
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := sampleTLE()
	text := orig.Format()
	back, err := ParseTLE(text)
	if err != nil {
		t.Fatalf("formatted TLE fails to parse: %v\n%s", err, text)
	}
	if back.Name != orig.Name || back.NoradID != orig.NoradID {
		t.Errorf("identity fields lost: %q %q", back.Name, back.NoradID)
	}
	deg := 180 / math.Pi
	closeEnough := func(name string, got, want, tolDeg float64) {
		if math.Abs(got-want)*deg > tolDeg {
			t.Errorf("%s = %v°, want %v°", name, got*deg, want*deg)
		}
	}
	closeEnough("inclination", back.Inclination, orig.Inclination, 1e-3)
	closeEnough("raan", back.RAAN, orig.RAAN, 1e-3)
	closeEnough("argp", back.ArgPerigee, orig.ArgPerigee, 1e-3)
	closeEnough("mean anomaly", back.MeanAnomaly, orig.MeanAnomaly, 1e-3)
	if math.Abs(back.Eccentricity-orig.Eccentricity) > 1e-7 {
		t.Errorf("eccentricity %v, want %v", back.Eccentricity, orig.Eccentricity)
	}
	if math.Abs(back.MeanMotion-orig.MeanMotion)/orig.MeanMotion > 1e-8 {
		t.Errorf("mean motion %v, want %v", back.MeanMotion, orig.MeanMotion)
	}
	if math.Abs(back.BStar-orig.BStar)/orig.BStar > 1e-4 {
		t.Errorf("bstar %v, want %v", back.BStar, orig.BStar)
	}
	if d := back.Epoch.Sub(orig.Epoch); d < -time.Second || d > time.Second {
		t.Errorf("epoch %v, want %v", back.Epoch, orig.Epoch)
	}
}

func TestFormatLineGeometry(t *testing.T) {
	text := sampleTLE().Format()
	lines := strings.Split(text, "\n")
	if len(lines) != 3 {
		t.Fatalf("named TLE should have 3 lines, got %d", len(lines))
	}
	for i, l := range lines[1:] {
		if len(l) != 69 {
			t.Errorf("line %d has %d columns, want 69: %q", i+1, len(l), l)
		}
		if err := verifyChecksum(l); err != nil {
			t.Errorf("line %d checksum: %v", i+1, err)
		}
	}
	// Unnamed TLEs emit two lines.
	un := sampleTLE()
	un.Name = ""
	if got := len(strings.Split(un.Format(), "\n")); got != 2 {
		t.Errorf("unnamed TLE has %d lines, want 2", got)
	}
}

func TestFormatRoundTripProperty(t *testing.T) {
	f := func(incRaw, raanRaw, eccRaw, mmRaw uint16) bool {
		orig := TLE{
			NoradID:      "00001",
			Epoch:        time.Date(2026, 3, 1, 6, 30, 0, 0, time.UTC),
			Inclination:  float64(incRaw%1800) / 10 * math.Pi / 180,
			RAAN:         float64(raanRaw%3600) / 10 * math.Pi / 180,
			Eccentricity: float64(eccRaw%9000) / 1e4,
			ArgPerigee:   float64(raanRaw%3599) / 10 * math.Pi / 180,
			MeanAnomaly:  float64(incRaw%3599) / 10 * math.Pi / 180,
			MeanMotion:   (1 + float64(mmRaw%15)) * 2 * math.Pi / 1440,
			BStar:        1e-5,
		}
		back, err := ParseTLE(orig.Format())
		if err != nil {
			return false
		}
		return math.Abs(back.Inclination-orig.Inclination) < 1e-5 &&
			math.Abs(back.Eccentricity-orig.Eccentricity) < 1e-6 &&
			math.Abs(back.MeanMotion-orig.MeanMotion) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatExpField(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, " 00000-0"},
		{6.6816e-5, " 66816-4"},
		{-6.6816e-5, "-66816-4"},
		{0.5, " 50000+0"},
	}
	for _, c := range cases {
		if got := formatTLEExp(c.in); got != c.want {
			t.Errorf("formatTLEExp(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// All exp-format outputs re-parse to the input.
	for _, v := range []float64{0, 1e-3, -2.5e-4, 6.6816e-5, 0.1} {
		got, err := parseTLEExp(formatTLEExp(v))
		if err != nil {
			t.Errorf("parse(format(%v)): %v", v, err)
			continue
		}
		if math.Abs(got-v) > 1e-5*math.Max(math.Abs(v), 1e-9)+1e-12 {
			t.Errorf("exp round trip %v → %v", v, got)
		}
	}
}

func TestFormatSGP4Usable(t *testing.T) {
	// A formatted TLE must initialize SGP4 and propagate sanely.
	tle := sampleTLE()
	back, err := ParseTLE(tle.Format())
	if err != nil {
		t.Fatal(err)
	}
	prop, err := NewSGP4(back)
	if err != nil {
		t.Fatal(err)
	}
	s, err := prop.PropagateMinutes(45)
	if err != nil {
		t.Fatal(err)
	}
	if alt := s.AltitudeKm(); alt < 300 || alt > 600 {
		t.Errorf("formatted ISS-like TLE gives altitude %v km", alt)
	}
}
