package orbit

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// SGP4 is a hand-rolled implementation of the near-Earth SGP4 analytic
// propagator (Spacetrack Report #3, Hoots & Roehrich 1980). It models
// secular and periodic effects of J2/J3/J4 and atmospheric drag via the
// BSTAR term, which is what LEO constellation analysis needs. The deep-space
// extensions (SDP4) for periods over 225 minutes are out of scope — GEO
// satellites in this study are modeled with the two-body/J2 propagator,
// which is exact enough for geometry over days.
type SGP4 struct {
	tle TLE

	// Initialization constants, following the report's notation.
	cosio, sinio           float64 // cos/sin of inclination
	eta                    float64
	c1, c4, c5             float64
	d2, d3, d4             float64
	aodp, xnodp            float64 // recovered semi-major axis (er) and mean motion (rad/min)
	omgcof, xmcof          float64
	xnodcf, t2cof          float64
	t3cof, t4cof, t5cof    float64
	xlcof, aycof           float64
	delmo, sinmo           float64
	x3thm1, x1mth2, x7thm1 float64
	xmdot, omgdot, xnodot  float64 // secular rates, rad/min
	isimp                  bool    // simplified drag for perigee < 220 km
}

// SGP4 gravitational constants (WGS-72).
const (
	sgp4XKE    = 0.0743669161331734132 // sqrt(µ) in (earth radii)^1.5 / min
	sgp4CK2    = 5.413080e-4           // 0.5 * J2 * aE²
	sgp4CK4    = 0.62098875e-6         // -0.375 * J4 * aE⁴
	sgp4XJ3    = -0.253881e-5          // J3
	sgp4QOMS2T = 1.88027916e-9         // (q0 - s)⁴ in er⁴
	sgp4S      = 1.01222928            // s, er
	sgp4AE     = 1.0                   // distance units per earth radius
)

// ErrSatelliteDecayed is returned when drag has shrunk the orbit below the
// surface at the requested time.
var ErrSatelliteDecayed = errors.New("sgp4: satellite has decayed")

// NewSGP4 initializes the propagator from a parsed TLE.
func NewSGP4(tle TLE) (*SGP4, error) {
	if tle.Eccentricity < 0 || tle.Eccentricity >= 1 {
		return nil, fmt.Errorf("sgp4: eccentricity %v out of range", tle.Eccentricity)
	}
	if tle.MeanMotion <= 0 {
		return nil, fmt.Errorf("sgp4: non-positive mean motion %v", tle.MeanMotion)
	}

	p := &SGP4{tle: tle}

	xno := tle.MeanMotion // rad/min
	eo := tle.Eccentricity
	xincl := tle.Inclination

	p.cosio = math.Cos(xincl)
	p.sinio = math.Sin(xincl)
	theta2 := p.cosio * p.cosio
	p.x3thm1 = 3*theta2 - 1
	p.x1mth2 = 1 - theta2
	p.x7thm1 = 7*theta2 - 1
	eosq := eo * eo
	betao2 := 1 - eosq
	betao := math.Sqrt(betao2)

	// Recover original mean motion and semi-major axis.
	a1 := math.Pow(sgp4XKE/xno, 2.0/3.0)
	del1 := 1.5 * sgp4CK2 * p.x3thm1 / (a1 * a1 * betao * betao2)
	ao := a1 * (1 - del1*(1.0/3.0+del1*(1+134.0/81.0*del1)))
	delo := 1.5 * sgp4CK2 * p.x3thm1 / (ao * ao * betao * betao2)
	p.xnodp = xno / (1 + delo)
	p.aodp = ao / (1 - delo)

	// Drag-term setup: adjust s for low perigees.
	s4 := sgp4S
	qoms24 := sgp4QOMS2T
	perige := (p.aodp*(1-eo) - sgp4AE) * EarthRadiusKm
	if perige < 156 {
		s4 = perige - 78
		if perige <= 98 {
			s4 = 20
		}
		qoms24 = math.Pow((120-s4)*sgp4AE/EarthRadiusKm, 4)
		s4 = s4/EarthRadiusKm + sgp4AE
	}
	p.isimp = p.aodp*(1-eo)/sgp4AE < 220/EarthRadiusKm+sgp4AE

	pinvsq := 1 / (p.aodp * p.aodp * betao2 * betao2)
	tsi := 1 / (p.aodp - s4)
	p.eta = p.aodp * eo * tsi
	etasq := p.eta * p.eta
	eeta := eo * p.eta
	psisq := math.Abs(1 - etasq)
	coef := qoms24 * math.Pow(tsi, 4)
	coef1 := coef / math.Pow(psisq, 3.5)
	c2 := coef1 * p.xnodp * (p.aodp*(1+1.5*etasq+eeta*(4+etasq)) +
		0.75*sgp4CK2*tsi/psisq*p.x3thm1*(8+3*etasq*(8+etasq)))
	p.c1 = tle.BStar * c2

	var c3 float64
	if eo > 1e-4 {
		c3 = coef * tsi * a3ovk2() * p.xnodp * sgp4AE * p.sinio / eo
	}
	p.c4 = 2 * p.xnodp * coef1 * p.aodp * betao2 *
		(p.eta*(2+0.5*etasq) + eo*(0.5+2*etasq) -
			2*sgp4CK2*tsi/(p.aodp*psisq)*
				(-3*p.x3thm1*(1-2*eeta+etasq*(1.5-0.5*eeta))+
					0.75*p.x1mth2*(2*etasq-eeta*(1+etasq))*math.Cos(2*tle.ArgPerigee)))
	p.c5 = 2 * coef1 * p.aodp * betao2 * (1 + 2.75*(etasq+eeta) + eeta*etasq)

	theta4 := theta2 * theta2
	temp1 := 3 * sgp4CK2 * pinvsq * p.xnodp
	temp2 := temp1 * sgp4CK2 * pinvsq
	temp3 := 1.25 * sgp4CK4 * pinvsq * pinvsq * p.xnodp
	p.xmdot = p.xnodp + 0.5*temp1*betao*p.x3thm1 +
		0.0625*temp2*betao*(13-78*theta2+137*theta4)
	x1m5th := 1 - 5*theta2
	p.omgdot = -0.5*temp1*x1m5th +
		0.0625*temp2*(7-114*theta2+395*theta4) +
		temp3*(3-36*theta2+49*theta4)
	xhdot1 := -temp1 * p.cosio
	p.xnodot = xhdot1 + (0.5*temp2*(4-19*theta2)+2*temp3*(3-7*theta2))*p.cosio
	p.omgcof = tle.BStar * c3 * math.Cos(tle.ArgPerigee)
	p.xmcof = 0
	if eo > 1e-4 {
		p.xmcof = -(2.0 / 3.0) * coef * tle.BStar * sgp4AE / eeta
	}
	p.xnodcf = 3.5 * betao2 * xhdot1 * p.c1
	p.t2cof = 1.5 * p.c1
	p.xlcof = 0.125 * a3ovk2() * p.sinio * (3 + 5*p.cosio) / (1 + p.cosio)
	p.aycof = 0.25 * a3ovk2() * p.sinio
	p.delmo = math.Pow(1+p.eta*math.Cos(tle.MeanAnomaly), 3)
	p.sinmo = math.Sin(tle.MeanAnomaly)

	if !p.isimp {
		c1sq := p.c1 * p.c1
		p.d2 = 4 * p.aodp * tsi * c1sq
		temp := p.d2 * tsi * p.c1 / 3
		p.d3 = (17*p.aodp + s4) * temp
		p.d4 = 0.5 * temp * p.aodp * tsi * (221*p.aodp + 31*s4) * p.c1
		p.t3cof = p.d2 + 2*c1sq
		p.t4cof = 0.25 * (3*p.d3 + p.c1*(12*p.d2+10*c1sq))
		p.t5cof = 0.2 * (3*p.d4 + 12*p.c1*p.d3 + 6*p.d2*p.d2 + 15*c1sq*(2*p.d2+c1sq))
	}

	return p, nil
}

// a3ovk2 returns -J3/CK2 · aE, a constant in the long-period terms.
func a3ovk2() float64 { return -sgp4XJ3 / sgp4CK2 * sgp4AE * sgp4AE * sgp4AE }

// PropagateMinutes returns the ECI state tsince minutes after the TLE epoch.
func (p *SGP4) PropagateMinutes(tsince float64) (State, error) {
	tle := p.tle
	eo := tle.Eccentricity

	// Secular gravity and drag.
	xmdf := tle.MeanAnomaly + p.xmdot*tsince
	omgadf := tle.ArgPerigee + p.omgdot*tsince
	xnoddf := tle.RAAN + p.xnodot*tsince
	omega := omgadf
	xmp := xmdf
	tsq := tsince * tsince
	xnode := xnoddf + p.xnodcf*tsq
	tempa := 1 - p.c1*tsince
	tempe := tle.BStar * p.c4 * tsince
	templ := p.t2cof * tsq
	if !p.isimp {
		delomg := p.omgcof * tsince
		delm := p.xmcof * (math.Pow(1+p.eta*math.Cos(xmdf), 3) - p.delmo)
		temp := delomg + delm
		xmp = xmdf + temp
		omega = omgadf - temp
		tcube := tsq * tsince
		tfour := tsince * tcube
		tempa += -p.d2*tsq - p.d3*tcube - p.d4*tfour
		tempe += tle.BStar * p.c5 * (math.Sin(xmp) - p.sinmo)
		templ += p.t3cof*tcube + tfour*(p.t4cof+tsince*p.t5cof)
	}
	a := p.aodp * tempa * tempa
	e := eo - tempe
	if e < 1e-6 {
		e = 1e-6
	}
	if e >= 1 {
		return State{}, ErrSatelliteDecayed
	}
	xl := xmp + omega + xnode + p.xnodp*templ
	beta := math.Sqrt(1 - e*e)
	xn := sgp4XKE / math.Pow(a, 1.5)

	// Long-period periodics.
	axn := e * math.Cos(omega)
	temp := 1 / (a * beta * beta)
	xll := temp * p.xlcof * axn
	aynl := temp * p.aycof
	xlt := xl + xll
	ayn := e*math.Sin(omega) + aynl

	// Solve Kepler's equation for E + ω.
	capu := vecmath.WrapTwoPi(xlt - xnode)
	epw := capu
	var sinepw, cosepw, ecose, esine float64
	for i := 0; i < 10; i++ {
		sinepw = math.Sin(epw)
		cosepw = math.Cos(epw)
		ecose = axn*cosepw + ayn*sinepw
		esine = axn*sinepw - ayn*cosepw
		f := capu - epw + esine
		if math.Abs(f) < 1e-12 {
			break
		}
		df := 1 - ecose
		delep := f / df
		if math.Abs(delep) > 0.95 {
			delep = math.Copysign(0.95, delep)
		}
		epw += delep
	}

	// Short-period preliminary quantities.
	elsq := axn*axn + ayn*ayn
	templ1 := 1 - elsq
	pl := a * templ1
	if pl < 0 {
		return State{}, ErrSatelliteDecayed
	}
	r := a * (1 - ecose)
	invR := 1 / r
	rdot := sgp4XKE * math.Sqrt(a) * esine * invR
	rfdot := sgp4XKE * math.Sqrt(pl) * invR
	betal := math.Sqrt(templ1)
	temp3 := esine / (1 + betal)
	cosu := a * invR * (cosepw - axn + ayn*temp3)
	sinu := a * invR * (sinepw - ayn - axn*temp3)
	u := math.Atan2(sinu, cosu)
	sin2u := 2 * sinu * cosu
	cos2u := 2*cosu*cosu - 1

	invPl := 1 / pl
	temp1 := sgp4CK2 * invPl
	temp2 := temp1 * invPl

	// Short-period periodics.
	rk := r*(1-1.5*temp2*betal*p.x3thm1) + 0.5*temp1*p.x1mth2*cos2u
	uk := u - 0.25*temp2*p.x7thm1*sin2u
	xnodek := xnode + 1.5*temp2*p.cosio*sin2u
	xinck := tle.Inclination + 1.5*temp2*p.cosio*p.sinio*cos2u
	rdotk := rdot - xn*temp1*p.x1mth2*sin2u
	rfdotk := rfdot + xn*temp1*(p.x1mth2*cos2u+1.5*p.x3thm1)

	if rk < sgp4AE {
		return State{}, ErrSatelliteDecayed
	}

	// Orientation vectors.
	sinuk := math.Sin(uk)
	cosuk := math.Cos(uk)
	sinik := math.Sin(xinck)
	cosik := math.Cos(xinck)
	sinnok := math.Sin(xnodek)
	cosnok := math.Cos(xnodek)
	xmx := -sinnok * cosik
	xmy := cosnok * cosik
	ux := xmx*sinuk + cosnok*cosuk
	uy := xmy*sinuk + sinnok*cosuk
	uz := sinik * sinuk
	vx := xmx*cosuk - cosnok*sinuk
	vy := xmy*cosuk - sinnok*sinuk
	vz := sinik * cosuk

	// Position in km, velocity in km/s.
	posScale := EarthRadiusKm
	velScale := EarthRadiusKm / 60
	return State{
		Position: vecmath.Vec3{X: rk * ux * posScale, Y: rk * uy * posScale, Z: rk * uz * posScale},
		Velocity: vecmath.Vec3{
			X: (rdotk*ux + rfdotk*vx) * velScale,
			Y: (rdotk*uy + rfdotk*vy) * velScale,
			Z: (rdotk*uz + rfdotk*vz) * velScale,
		},
	}, nil
}

// StateAt returns the ECI state at the given wall-clock time.
func (p *SGP4) StateAt(t time.Time) (State, error) {
	tsince := t.Sub(p.tle.Epoch).Minutes()
	return p.PropagateMinutes(tsince)
}

// TLE returns the element set the propagator was initialized from.
func (p *SGP4) TLE() TLE { return p.tle }
