package orbit

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/vecmath"
)

func TestRK4MatchesKeplerTwoBody(t *testing.T) {
	// With J2 and drag off, the integrator must track the analytic
	// Kepler solution to sub-meter accuracy over several orbits.
	el := Elements{Epoch: testEpoch, SemiMajorKm: 7000, Eccentricity: 0.05,
		InclinationRad: 0.9, RAANRad: 1.1, ArgPerigeeRad: 0.3, MeanAnomalyRad: 0.2}
	num := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	num.IncludeJ2 = false
	num.StepSec = 5

	for _, dt := range []time.Duration{30 * time.Minute, 2 * time.Hour, 5 * time.Hour} {
		tm := testEpoch.Add(dt)
		got, err := num.State(tm)
		if err != nil {
			t.Fatal(err)
		}
		want := el.StateAt(tm)
		if d := got.Position.DistanceTo(want.Position); d > 0.005 {
			t.Errorf("at +%v RK4 differs from Kepler by %v km", dt, d)
		}
	}
}

func TestRK4EnergyConservation(t *testing.T) {
	el := CircularLEO(550, 0.9, 0, 0, testEpoch)
	num := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	num.IncludeJ2 = false
	num.StepSec = 10
	e0 := SpecificEnergy(el.StateAt(testEpoch))
	s, err := num.State(testEpoch.Add(12 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(SpecificEnergy(s)-e0) / math.Abs(e0); rel > 1e-9 {
		t.Errorf("energy drifted by %v over 12 h", rel)
	}
}

func TestRK4J2NodalRegressionMatchesAnalytic(t *testing.T) {
	// Integrated J2 dynamics should show the analytic secular RAAN drift.
	el := CircularLEO(700, 51.6*math.Pi/180, 1.0, 0, testEpoch)
	num := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	num.StepSec = 10

	after := testEpoch.Add(24 * time.Hour)
	s, err := num.State(after)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ElementsFromState(s, after)
	if err != nil {
		t.Fatal(err)
	}
	wantRate := el.J2SecularRates().RAANRadS
	wantRAAN := el.RAANRad + wantRate*86400
	diff := math.Abs(math.Mod(got.RAANRad-wantRAAN+3*math.Pi, 2*math.Pi) - math.Pi)
	// Within a few percent of a day's regression (~0.08 rad).
	if diff > 0.01 {
		t.Errorf("RAAN after 1 day = %v, analytic %v (diff %v rad)", got.RAANRad, wantRAAN, diff)
	}
}

func TestRK4DragLowersOrbit(t *testing.T) {
	el := CircularLEO(300, 0.9, 0, 0, testEpoch)
	body := DragBody{MassKg: 4, AreaM2: 0.03} // cubesat at low altitude
	num := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	num.Drag = &body
	num.StepSec = 10

	s, err := num.State(testEpoch.Add(24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	e0 := SpecificEnergy(el.StateAt(testEpoch))
	e1 := SpecificEnergy(s)
	if e1 >= e0 {
		t.Errorf("drag should dissipate energy: %v → %v", e0, e1)
	}
	// And the decay magnitude should agree with the analytic rate within
	// a factor of ~2 (analytic assumes circular averaging).
	aNum := -EarthMuKm3S2 / (2 * e1)
	aAna := el.SemiMajorKm - body.DecayRateKmPerYear(300)/365.25
	dNum := el.SemiMajorKm - aNum
	dAna := el.SemiMajorKm - aAna
	if dAna <= 0 || dNum <= 0 {
		t.Fatalf("no decay measured: num %v km, analytic %v km", dNum, dAna)
	}
	if r := dNum / dAna; r < 0.3 || r > 3 {
		t.Errorf("daily decay: numerical %v km vs analytic %v km (ratio %v)", dNum, dAna, r)
	}
}

func TestRK4SGP4CrossValidation(t *testing.T) {
	// SGP4's mean-element trajectory should stay within tens of km of a
	// direct J2 integration seeded with its osculating state over a few
	// revolutions (they model slightly different things; the bound is
	// loose but meaningful).
	tle := mustTLE(t, str3TLE)
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := prop.StateAt(tle.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	num := NewNumericalPropagator(s0, tle.Epoch)
	num.StepSec = 5

	for _, minutes := range []float64{30, 90, 180} {
		tm := tle.Epoch.Add(time.Duration(minutes * float64(time.Minute)))
		sg, err := prop.StateAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		nm, err := num.State(tm)
		if err != nil {
			t.Fatal(err)
		}
		if d := sg.Position.DistanceTo(nm.Position); d > 60 {
			t.Errorf("at +%v min SGP4 and RK4 diverge by %v km", minutes, d)
		}
	}
}

func TestRK4BackwardRestarts(t *testing.T) {
	el := CircularLEO(550, 0.9, 0, 0, testEpoch)
	num := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	num.IncludeJ2 = false
	a, err := num.State(testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Ask for an earlier time: must restart cleanly, not walk backward.
	b, err := num.State(testEpoch.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// And forward again reproduces the first answer.
	a2, err := num.State(testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Position.DistanceTo(a2.Position); d > 1e-6 {
		t.Errorf("cache restart changed the trajectory by %v km", d)
	}
	if b.Position.DistanceTo(a.Position) < 1 {
		t.Error("30-minute and 60-minute states should differ")
	}
}

func TestRK4Validation(t *testing.T) {
	num := &NumericalPropagator{}
	if _, err := num.State(testEpoch); err == nil {
		t.Error("empty initial state accepted")
	}
	el := CircularLEO(550, 0.9, 0, 0, testEpoch)
	bad := NewNumericalPropagator(el.StateAt(testEpoch), testEpoch)
	bad.StepSec = 0
	if _, err := bad.State(testEpoch.Add(time.Minute)); err == nil {
		t.Error("zero step accepted")
	}
	// A ballistic state (no tangential velocity) must error when it hits
	// the surface.
	falling := NewNumericalPropagator(State{
		Position: vecmath.Vec3{X: EarthRadiusKm + 200},
	}, testEpoch)
	falling.IncludeJ2 = false
	if _, err := falling.State(testEpoch.Add(time.Hour)); err == nil {
		t.Error("surface impact not detected")
	}
}
