package orbit

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// Elements is a classical Keplerian element set at a reference epoch.
type Elements struct {
	Epoch          time.Time
	SemiMajorKm    float64 // semi-major axis a, km
	Eccentricity   float64 // e, dimensionless, [0, 1) for closed orbits
	InclinationRad float64 // i, radians, [0, π]
	RAANRad        float64 // Ω, right ascension of ascending node, radians
	ArgPerigeeRad  float64 // ω, argument of perigee, radians
	MeanAnomalyRad float64 // M at epoch, radians
}

// State is an ECI position/velocity pair in km and km/s.
type State struct {
	Position vecmath.Vec3 // km
	Velocity vecmath.Vec3 // km/s
}

// AltitudeKm returns the geocentric altitude of the state above the
// spherical Earth, in km.
func (s State) AltitudeKm() float64 { return s.Position.Norm() - EarthRadiusKm }

// ErrNotElliptical is returned when an operation requires a closed orbit.
var ErrNotElliptical = errors.New("orbit: eccentricity must be in [0, 1)")

// CircularLEO returns elements for a circular orbit at the given altitude
// and inclination, with the ascending node at raan and the satellite at
// argLat radians past the ascending node at epoch.
func CircularLEO(altKm, incRad, raan, argLat float64, epoch time.Time) Elements {
	return Elements{
		Epoch:          epoch,
		SemiMajorKm:    EarthRadiusKm + altKm,
		Eccentricity:   0,
		InclinationRad: incRad,
		RAANRad:        vecmath.WrapTwoPi(raan),
		ArgPerigeeRad:  0,
		MeanAnomalyRad: vecmath.WrapTwoPi(argLat),
	}
}

// Geostationary returns elements for a geostationary slot at the given
// east longitude (radians) at epoch. The returned orbit is equatorial and
// circular with the orbital rate equal to Earth's rotation rate, so the
// sub-satellite longitude is fixed.
func Geostationary(lonRad float64, epoch time.Time) Elements {
	// a from n = ωE: a = (µ/ωE²)^(1/3).
	a := math.Cbrt(EarthMuKm3S2 / (EarthRotationRateRadS * EarthRotationRateRadS))
	// At epoch, the satellite sits above lonRad, i.e. its right ascension
	// equals GMST + lon. With i = 0 the in-plane angle Ω+ω+M plays that role.
	ra := vecmath.WrapTwoPi(GMST(epoch) + lonRad)
	return Elements{
		Epoch:          epoch,
		SemiMajorKm:    a,
		Eccentricity:   0,
		InclinationRad: 0,
		RAANRad:        0,
		ArgPerigeeRad:  0,
		MeanAnomalyRad: ra,
	}
}

// MeanMotionRadS returns the two-body mean motion n = sqrt(µ/a³) in rad/s.
func (el Elements) MeanMotionRadS() float64 {
	a := el.SemiMajorKm
	return math.Sqrt(EarthMuKm3S2 / (a * a * a))
}

// Period returns the orbital period.
func (el Elements) Period() time.Duration {
	n := el.MeanMotionRadS()
	return time.Duration(2 * math.Pi / n * float64(time.Second))
}

// PerigeeAltKm returns the perigee altitude above the spherical Earth.
func (el Elements) PerigeeAltKm() float64 {
	return el.SemiMajorKm*(1-el.Eccentricity) - EarthRadiusKm
}

// ApogeeAltKm returns the apogee altitude above the spherical Earth.
func (el Elements) ApogeeAltKm() float64 {
	return el.SemiMajorKm*(1+el.Eccentricity) - EarthRadiusKm
}

// Validate checks the element set for physical plausibility.
func (el Elements) Validate() error {
	if el.Eccentricity < 0 || el.Eccentricity >= 1 {
		return ErrNotElliptical
	}
	if el.SemiMajorKm <= EarthRadiusKm*(1-el.Eccentricity) {
		return fmt.Errorf("orbit: perigee %.1f km is inside Earth", el.PerigeeAltKm())
	}
	if el.InclinationRad < 0 || el.InclinationRad > math.Pi {
		return fmt.Errorf("orbit: inclination %.3f rad outside [0, π]", el.InclinationRad)
	}
	return nil
}

// SolveKepler solves Kepler's equation M = E - e·sin(E) for the eccentric
// anomaly E using Newton iteration with a bisection-safe fallback. M may be
// any angle; the result is wrapped to match M's revolution.
func SolveKepler(meanAnomaly, ecc float64) float64 {
	if ecc == 0 {
		return meanAnomaly
	}
	m := vecmath.WrapPi(meanAnomaly)
	// Starting guess per Danby: works for all e in [0, 1).
	e := m + math.Copysign(0.85*ecc, m)
	for i := 0; i < 50; i++ {
		f := e - ecc*math.Sin(e) - m
		fp := 1 - ecc*math.Cos(e)
		de := f / fp
		e -= de
		if math.Abs(de) < 1e-13 {
			break
		}
	}
	return e + (meanAnomaly - m)
}

// EccentricToTrue converts eccentric anomaly to true anomaly.
func EccentricToTrue(eccAnomaly, ecc float64) float64 {
	halfE := eccAnomaly / 2
	return 2 * math.Atan2(
		math.Sqrt(1+ecc)*math.Sin(halfE),
		math.Sqrt(1-ecc)*math.Cos(halfE),
	)
}

// TrueToEccentric converts true anomaly to eccentric anomaly.
func TrueToEccentric(trueAnomaly, ecc float64) float64 {
	halfNu := trueAnomaly / 2
	return 2 * math.Atan2(
		math.Sqrt(1-ecc)*math.Sin(halfNu),
		math.Sqrt(1+ecc)*math.Cos(halfNu),
	)
}

// EccentricToMean converts eccentric anomaly to mean anomaly.
func EccentricToMean(eccAnomaly, ecc float64) float64 {
	return eccAnomaly - ecc*math.Sin(eccAnomaly)
}

// perifocalToECI builds the rotation from the perifocal (PQW) frame to ECI
// for the element set.
func (el Elements) perifocalToECI() vecmath.Mat3 {
	return vecmath.RotZ(el.RAANRad).
		Mul(vecmath.RotX(el.InclinationRad)).
		Mul(vecmath.RotZ(el.ArgPerigeeRad))
}

// StateAtAnomaly returns the ECI state for the element set at the given
// true anomaly (radians).
func (el Elements) StateAtAnomaly(trueAnomaly float64) State {
	a, e := el.SemiMajorKm, el.Eccentricity
	p := a * (1 - e*e) // semi-latus rectum
	r := p / (1 + e*math.Cos(trueAnomaly))
	cosNu, sinNu := math.Cos(trueAnomaly), math.Sin(trueAnomaly)

	// Perifocal position and velocity.
	posPQW := vecmath.Vec3{X: r * cosNu, Y: r * sinNu}
	vScale := math.Sqrt(EarthMuKm3S2 / p)
	velPQW := vecmath.Vec3{X: -vScale * sinNu, Y: vScale * (e + cosNu)}

	rot := el.perifocalToECI()
	return State{
		Position: rot.MulVec(posPQW),
		Velocity: rot.MulVec(velPQW),
	}
}

// StateAt propagates the element set to time t using two-body dynamics
// (no perturbations) and returns the ECI state.
func (el Elements) StateAt(t time.Time) State {
	dt := t.Sub(el.Epoch).Seconds()
	m := el.MeanAnomalyRad + el.MeanMotionRadS()*dt
	ea := SolveKepler(m, el.Eccentricity)
	nu := EccentricToTrue(ea, el.Eccentricity)
	return el.StateAtAnomaly(nu)
}

// ElementsFromState recovers a classical element set from an ECI state.
// It fails for parabolic/hyperbolic states and for states with undefined
// elements it falls back to zero RAAN / argument of perigee (equatorial or
// circular orbits), matching the conventions used by CircularLEO.
func ElementsFromState(s State, epoch time.Time) (Elements, error) {
	r := s.Position
	v := s.Velocity
	rn := r.Norm()
	vn := v.Norm()
	if rn == 0 {
		return Elements{}, errors.New("orbit: zero position vector")
	}

	h := r.Cross(v)                    // specific angular momentum
	n := vecmath.Vec3{X: -h.Y, Y: h.X} // node vector = ẑ × h

	// Eccentricity vector.
	eVec := r.Scale(vn*vn/EarthMuKm3S2 - 1/rn).
		Sub(v.Scale(r.Dot(v) / EarthMuKm3S2))
	ecc := eVec.Norm()

	energy := vn*vn/2 - EarthMuKm3S2/rn
	if energy >= 0 {
		return Elements{}, ErrNotElliptical
	}
	a := -EarthMuKm3S2 / (2 * energy)

	inc := math.Acos(vecmath.Clamp(h.Z/h.Norm(), -1, 1))

	const tiny = 1e-11
	var raan, argp, nu float64
	equatorial := n.Norm() < tiny
	circular := ecc < tiny

	switch {
	case !equatorial && !circular:
		raan = math.Atan2(n.Y, n.X)
		argp = n.AngleTo(eVec)
		if eVec.Z < 0 {
			argp = 2*math.Pi - argp
		}
		nu = eVec.AngleTo(r)
		if r.Dot(v) < 0 {
			nu = 2*math.Pi - nu
		}
	case equatorial && !circular:
		// Use longitude of perigee measured from X axis.
		raan = 0
		argp = math.Atan2(eVec.Y, eVec.X)
		if h.Z < 0 {
			argp = 2*math.Pi - argp
		}
		nu = eVec.AngleTo(r)
		if r.Dot(v) < 0 {
			nu = 2*math.Pi - nu
		}
	case !equatorial && circular:
		raan = math.Atan2(n.Y, n.X)
		argp = 0
		// Argument of latitude stands in for the anomaly.
		nu = n.AngleTo(r)
		if r.Z < 0 {
			nu = 2*math.Pi - nu
		}
	default: // equatorial and circular
		raan, argp = 0, 0
		nu = math.Atan2(r.Y, r.X)
		if h.Z < 0 {
			nu = 2*math.Pi - nu
		}
	}

	ea := TrueToEccentric(nu, ecc)
	m := EccentricToMean(ea, ecc)

	return Elements{
		Epoch:          epoch,
		SemiMajorKm:    a,
		Eccentricity:   ecc,
		InclinationRad: inc,
		RAANRad:        vecmath.WrapTwoPi(raan),
		ArgPerigeeRad:  vecmath.WrapTwoPi(argp),
		MeanAnomalyRad: vecmath.WrapTwoPi(m),
	}, nil
}
