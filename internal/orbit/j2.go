package orbit

import (
	"math"
	"time"

	"spacedc/internal/vecmath"
)

// J2Rates holds the secular drift rates caused by Earth's oblateness (J2).
type J2Rates struct {
	RAANRadS        float64 // nodal regression rate dΩ/dt
	ArgPerigeeRadS  float64 // apsidal rotation rate dω/dt
	MeanAnomalyRadS float64 // perturbed mean motion dM/dt (includes n)
}

// J2SecularRates returns the first-order secular rates for the element set.
func (el Elements) J2SecularRates() J2Rates {
	a, e, i := el.SemiMajorKm, el.Eccentricity, el.InclinationRad
	n := el.MeanMotionRadS()
	p := a * (1 - e*e)
	factor := 1.5 * EarthJ2 * (EarthRadiusKm / p) * (EarthRadiusKm / p) * n
	cosI, sinI := math.Cos(i), math.Sin(i)
	return J2Rates{
		RAANRadS:        -factor * cosI,
		ArgPerigeeRadS:  factor * (2 - 2.5*sinI*sinI),
		MeanAnomalyRadS: n + factor*math.Sqrt(1-e*e)*(1-1.5*sinI*sinI),
	}
}

// PropagateJ2 advances the element set to time t applying secular J2 drift
// to Ω, ω, and M, and returns the drifted element set (still at epoch t).
func (el Elements) PropagateJ2(t time.Time) Elements {
	dt := t.Sub(el.Epoch).Seconds()
	rates := el.J2SecularRates()
	out := el
	out.Epoch = t
	out.RAANRad = vecmath.WrapTwoPi(el.RAANRad + rates.RAANRadS*dt)
	out.ArgPerigeeRad = vecmath.WrapTwoPi(el.ArgPerigeeRad + rates.ArgPerigeeRadS*dt)
	out.MeanAnomalyRad = vecmath.WrapTwoPi(el.MeanAnomalyRad + rates.MeanAnomalyRadS*dt)
	return out
}

// StateAtJ2 propagates with secular J2 perturbations and returns the state.
func (el Elements) StateAtJ2(t time.Time) State {
	drifted := el.PropagateJ2(t)
	ea := SolveKepler(drifted.MeanAnomalyRad, drifted.Eccentricity)
	nu := EccentricToTrue(ea, drifted.Eccentricity)
	return drifted.StateAtAnomaly(nu)
}

// SunSynchronousInclination returns the inclination (radians) that makes a
// circular orbit at altKm sun-synchronous: its RAAN precesses 360° per
// tropical year, keeping local solar time at the ascending node constant.
// It returns NaN when no such inclination exists (altitude too high).
func SunSynchronousInclination(altKm float64) float64 {
	// Required nodal rate: 2π per tropical year, eastward.
	const tropicalYearSec = 365.2421897 * 86400
	want := 2 * math.Pi / tropicalYearSec

	a := EarthRadiusKm + altKm
	n := math.Sqrt(EarthMuKm3S2 / (a * a * a))
	factor := -1.5 * EarthJ2 * (EarthRadiusKm / a) * (EarthRadiusKm / a) * n
	cosI := want / factor
	if cosI < -1 || cosI > 1 {
		return math.NaN()
	}
	return math.Acos(cosI)
}

// SunSynchronous returns elements for a circular sun-synchronous orbit at
// the given altitude with the satellite at argLat past the ascending node.
// The boolean result is false when no SSO exists at that altitude.
func SunSynchronous(altKm, raan, argLat float64, epoch time.Time) (Elements, bool) {
	inc := SunSynchronousInclination(altKm)
	if math.IsNaN(inc) {
		return Elements{}, false
	}
	return CircularLEO(altKm, inc, raan, argLat, epoch), true
}
