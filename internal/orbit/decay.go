package orbit

import (
	"fmt"
	"math"
)

// This file models atmospheric drag and the maneuvers it forces on SµDC
// operators (§9): station-keeping boost budgets at LEO, orbital lifetime
// without boosting, end-of-life disposal burns for LEO, and graveyard
// re-orbits for GEO.

// atmosphereBand is one band of the piecewise-exponential static
// atmosphere (CIRA-72 style, as tabulated by Vallado): density
// ρ(h) = ρ₀·exp(-(h-h₀)/H) within the band.
type atmosphereBand struct {
	h0Km    float64
	rho0    float64 // kg/m³ at h0
	scaleKm float64
}

var atmosphereBands = []atmosphereBand{
	{100, 5.297e-7, 5.877},
	{110, 9.661e-8, 7.263},
	{120, 2.438e-8, 9.473},
	{130, 8.484e-9, 12.636},
	{150, 2.070e-9, 22.523},
	{180, 5.464e-10, 29.740},
	{200, 2.789e-10, 37.105},
	{250, 7.248e-11, 45.546},
	{300, 2.418e-11, 53.628},
	{350, 9.518e-12, 53.298},
	{400, 3.725e-12, 58.515},
	{450, 1.585e-12, 60.828},
	{500, 6.967e-13, 63.822},
	{600, 1.454e-13, 71.835},
	{700, 3.614e-14, 88.667},
	{800, 1.170e-14, 124.64},
	{900, 5.245e-15, 181.05},
	{1000, 3.019e-15, 268.00},
}

// AtmosphereDensity returns the static atmospheric density in kg/m³ at the
// given altitude. Below 100 km (the entry interface for this model) it
// clamps to the lowest band; above 1000 km it extrapolates the last band's
// scale height.
func AtmosphereDensity(altKm float64) float64 {
	if altKm <= atmosphereBands[0].h0Km {
		return atmosphereBands[0].rho0
	}
	band := atmosphereBands[len(atmosphereBands)-1]
	for i := len(atmosphereBands) - 1; i >= 0; i-- {
		if altKm >= atmosphereBands[i].h0Km {
			band = atmosphereBands[i]
			break
		}
	}
	return band.rho0 * math.Exp(-(altKm-band.h0Km)/band.scaleKm)
}

// DragBody captures a spacecraft's ballistic properties.
type DragBody struct {
	MassKg float64
	AreaM2 float64 // cross-sectional area normal to velocity
	Cd     float64 // drag coefficient; 0 means the standard 2.2
}

// Validate checks the body.
func (b DragBody) Validate() error {
	if b.MassKg <= 0 || b.AreaM2 <= 0 {
		return fmt.Errorf("orbit: non-positive drag mass %v or area %v", b.MassKg, b.AreaM2)
	}
	if b.Cd < 0 {
		return fmt.Errorf("orbit: negative drag coefficient %v", b.Cd)
	}
	return nil
}

// cd returns the effective drag coefficient.
func (b DragBody) cd() float64 {
	if b.Cd == 0 {
		return 2.2
	}
	return b.Cd
}

// BallisticCoefficient returns CdA/m in m²/kg (larger decays faster).
func (b DragBody) BallisticCoefficient() float64 {
	return b.cd() * b.AreaM2 / b.MassKg
}

// DecayRateKmPerYear returns the semi-major-axis decay rate of a circular
// orbit at altKm: da/dt = -√(µa)·ρ·(CdA/m).
func (b DragBody) DecayRateKmPerYear(altKm float64) float64 {
	a := EarthRadiusKm + altKm
	rhoKgM3 := AtmosphereDensity(altKm)
	// Convert: ρ in kg/km³ and CdA/m in km²/kg keeps everything in km.
	rho := rhoKgM3 * 1e9
	bc := b.BallisticCoefficient() * 1e-6
	kmPerSec := math.Sqrt(EarthMuKm3S2*a) * rho * bc
	return kmPerSec * 86400 * 365.25
}

// LifetimeYears integrates the decay of an initially circular orbit from
// altKm down to the 120 km entry interface, stepping adaptively. Orbits
// above ~1000 km return very large values; the integration caps at
// maxYears (0 means 500).
func (b DragBody) LifetimeYears(altKm, maxYears float64) float64 {
	if maxYears == 0 {
		maxYears = 500
	}
	const entryKm = 120.0
	alt := altKm
	years := 0.0
	for alt > entryKm && years < maxYears {
		rate := b.DecayRateKmPerYear(alt) // km/yr, positive
		if rate <= 0 {
			return maxYears
		}
		// Step so altitude drops by at most 5 km or 2% of a scale height.
		dt := 5.0 / rate
		if dt > 0.25 {
			dt = 0.25 // never step more than a quarter year
		}
		alt -= rate * dt
		years += dt
	}
	if years >= maxYears {
		return maxYears
	}
	return years
}

// BoostDeltaVPerYear returns the Δv per year needed to hold a circular
// orbit against drag: the drag deceleration integrated over a year.
func (b DragBody) BoostDeltaVPerYear(altKm float64) float64 {
	a := EarthRadiusKm + altKm
	v := math.Sqrt(EarthMuKm3S2/a) * 1e3 // m/s
	rho := AtmosphereDensity(altKm)
	accel := 0.5 * rho * v * v * b.BallisticCoefficient() // m/s²
	return accel * 86400 * 365.25
}

// HohmannDeltaV returns the total Δv (m/s) of a two-burn Hohmann transfer
// between circular orbits at the given altitudes.
func HohmannDeltaV(fromAltKm, toAltKm float64) float64 {
	r1 := EarthRadiusKm + fromAltKm
	r2 := EarthRadiusKm + toAltKm
	if r1 == r2 {
		return 0
	}
	mu := EarthMuKm3S2
	at := (r1 + r2) / 2
	v1 := math.Sqrt(mu / r1)
	v2 := math.Sqrt(mu / r2)
	vp := math.Sqrt(mu * (2/r1 - 1/at)) // transfer perigee speed (at r1)
	va := math.Sqrt(mu * (2/r2 - 1/at)) // transfer apogee speed (at r2)
	return (math.Abs(vp-v1) + math.Abs(v2-va)) * 1e3
}

// DisposalDeltaV returns the single-burn Δv (m/s) to drop a LEO
// satellite's perigee to the disposal altitude (atmospheric re-entry,
// §9's "disposal orbit"): an apogee burn lowering perigee from a circular
// orbit at altKm to perigeeKm.
func DisposalDeltaV(altKm, perigeeKm float64) float64 {
	r1 := EarthRadiusKm + altKm
	rp := EarthRadiusKm + perigeeKm
	if rp >= r1 {
		return 0
	}
	mu := EarthMuKm3S2
	vCirc := math.Sqrt(mu / r1)
	at := (r1 + rp) / 2
	vNew := math.Sqrt(mu * (2/r1 - 1/at))
	return (vCirc - vNew) * 1e3
}

// GraveyardDeltaV returns the Δv (m/s) to raise a GEO satellite ~300 km
// into the graveyard orbit (§9's GEO retirement).
func GraveyardDeltaV() float64 {
	return HohmannDeltaV(GeostationaryAltitudeKm, GeostationaryAltitudeKm+300)
}
