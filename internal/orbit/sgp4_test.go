package orbit

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// str3TLE is the classic SGP4 test case from Spacetrack Report #3.
const str3TLE = `1 88888U          80275.98708465  .00073094  13844-3  66816-4 0     8
2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518   105`

// checksummed recomputes the checksum of a TLE line, returning a line whose
// column 69 is valid. Used to build syntactically perfect test vectors.
func checksummed(line string) string {
	if len(line) > 68 {
		line = line[:68]
	}
	for len(line) < 68 {
		line += " "
	}
	sum := 0
	for _, c := range line {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return line + string(rune('0'+sum%10))
}

func mustTLE(t *testing.T, text string) TLE {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	fixed := make([]string, len(lines))
	for i, l := range lines {
		fixed[i] = checksummed(l)
	}
	tle, err := ParseTLE(strings.Join(fixed, "\n"))
	if err != nil {
		t.Fatalf("ParseTLE: %v", err)
	}
	return tle
}

func TestSGP4SpacetrackReport3(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatalf("NewSGP4: %v", err)
	}

	// Reference positions/velocities from Spacetrack Report #3 (WGS-72).
	want := []struct {
		tsince   float64 // minutes
		pos      [3]float64
		vel      [3]float64
		posTolKm float64
	}{
		{0, [3]float64{2328.97048951, -5995.22076416, 1719.97067261},
			[3]float64{2.91207230, -0.98341546, -7.09081703}, 1.0},
		{360, [3]float64{2456.10705566, -6071.93853760, 1222.89727783},
			[3]float64{2.67938992, -0.44829041, -7.22879231}, 5.0},
	}
	for _, w := range want {
		s, err := prop.PropagateMinutes(w.tsince)
		if err != nil {
			t.Fatalf("propagate %v min: %v", w.tsince, err)
		}
		got := [3]float64{s.Position.X, s.Position.Y, s.Position.Z}
		for i := 0; i < 3; i++ {
			if math.Abs(got[i]-w.pos[i]) > w.posTolKm {
				t.Errorf("t=%v min: pos[%d] = %.5f km, want %.5f ± %v",
					w.tsince, i, got[i], w.pos[i], w.posTolKm)
			}
		}
		gv := [3]float64{s.Velocity.X, s.Velocity.Y, s.Velocity.Z}
		for i := 0; i < 3; i++ {
			if math.Abs(gv[i]-w.vel[i]) > 0.01 {
				t.Errorf("t=%v min: vel[%d] = %.6f km/s, want %.6f",
					w.tsince, i, gv[i], w.vel[i])
			}
		}
	}
}

func TestSGP4AltitudeStaysPhysical(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0.0; m <= 1440; m += 7 {
		s, err := prop.PropagateMinutes(m)
		if err != nil {
			t.Fatalf("t=%v: %v", m, err)
		}
		alt := s.AltitudeKm()
		if alt < 100 || alt > 2000 {
			t.Fatalf("t=%v min: altitude %v km outside LEO", m, alt)
		}
		v := s.Velocity.Norm()
		if v < 6 || v > 9 {
			t.Fatalf("t=%v min: speed %v km/s implausible for LEO", m, v)
		}
	}
}

func TestSGP4DragShrinksOrbit(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	// Average the energy-derived semi-major axis over exactly one
	// revolution near t=0 and near t=3 d: with positive BSTAR, drag must
	// lower it. (Averaging raw radius is phase-sensitive; vis-viva a is
	// not.)
	period := 1440.0 / 16.05824518 // minutes
	meanA := func(start float64) float64 {
		sum, n := 0.0, 0
		for m := start; m < start+period; m += 0.25 {
			s, err := prop.PropagateMinutes(m)
			if err != nil {
				t.Fatal(err)
			}
			eps := s.Velocity.NormSq()/2 - EarthMuKm3S2/s.Position.Norm()
			sum += -EarthMuKm3S2 / (2 * eps)
			n++
		}
		return sum / float64(n)
	}
	early, late := meanA(0), meanA(3*1440)
	if late >= early-0.5 {
		t.Errorf("semi-major axis did not shrink under drag: %v → %v km", early, late)
	}
}

func TestSGP4StateAtUsesEpoch(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := prop.StateAt(tle.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	sM, err := prop.PropagateMinutes(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := s0.Position.DistanceTo(sM.Position); d > 1e-6 {
		t.Errorf("StateAt(epoch) differs from PropagateMinutes(0) by %v km", d)
	}
}

func TestSGP4RejectsBadElements(t *testing.T) {
	if _, err := NewSGP4(TLE{Eccentricity: 1.5, MeanMotion: 0.06}); err == nil {
		t.Error("eccentricity 1.5 accepted")
	}
	if _, err := NewSGP4(TLE{Eccentricity: 0.01, MeanMotion: 0}); err == nil {
		t.Error("zero mean motion accepted")
	}
}

func TestSGP4MatchesKeplerForCircularNoDrag(t *testing.T) {
	// With BSTAR = 0 and a near-circular orbit, SGP4's secular J2 drift
	// should stay within a few km of the J2 element propagator over a
	// couple of revolutions.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	el := CircularLEO(550, 53*math.Pi/180, 0.5, 0.25, epoch)
	tle := TLE{
		Epoch:        epoch,
		BStar:        0,
		Inclination:  el.InclinationRad,
		RAAN:         el.RAANRad,
		Eccentricity: 1e-6,
		ArgPerigee:   0,
		MeanAnomaly:  el.MeanAnomalyRad,
		MeanMotion:   el.MeanMotionRadS() * 60,
	}
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []time.Duration{0, 45 * time.Minute, 90 * time.Minute, 3 * time.Hour} {
		tm := epoch.Add(dt)
		sg, err := prop.StateAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		kp := el.StateAtJ2(tm)
		if d := sg.Position.DistanceTo(kp.Position); d > 30 {
			t.Errorf("at +%v SGP4 and J2 diverge by %.1f km", dt, d)
		}
	}
}

func TestSGP4LowPerigeeBranch(t *testing.T) {
	// Perigee below 156 km exercises the s4/qoms24 adjustment; below
	// 220 km exercises the simplified drag path. A 180 km circular orbit
	// hits both branches and must still produce a sane state.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	a := EarthRadiusKm + 180
	n := math.Sqrt(EarthMuKm3S2/(a*a*a)) * 60
	tle := TLE{Epoch: epoch, BStar: 1e-4, Inclination: 0.9,
		Eccentricity: 1e-4, MeanMotion: n}
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	if !prop.isimp {
		t.Error("180 km orbit should use simplified drag")
	}
	s, err := prop.PropagateMinutes(30)
	if err != nil {
		t.Fatal(err)
	}
	if alt := s.AltitudeKm(); alt < 100 || alt > 300 {
		t.Errorf("low orbit altitude %v km implausible", alt)
	}
}

func TestSGP4ParsedFields(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	if tle.NoradID != "88888" {
		t.Errorf("norad id = %q, want 88888", tle.NoradID)
	}
	if got := tle.Inclination * 180 / math.Pi; math.Abs(got-72.8435) > 1e-6 {
		t.Errorf("inclination = %v°, want 72.8435", got)
	}
	if got := tle.Eccentricity; math.Abs(got-0.0086731) > 1e-9 {
		t.Errorf("eccentricity = %v, want 0.0086731", got)
	}
	if got := tle.BStar; math.Abs(got-0.66816e-4) > 1e-12 {
		t.Errorf("bstar = %v, want 6.6816e-5", got)
	}
	// Epoch: day 275.98708465 of 1980 → October 1, 1980, ~23:41 UTC.
	want := time.Date(1980, 10, 1, 0, 0, 0, 0, time.UTC)
	if tle.Epoch.Year() != 1980 || tle.Epoch.YearDay() != want.AddDate(0, 0, 0).YearDay() {
		t.Errorf("epoch = %v, want Oct 1 1980", tle.Epoch)
	}
	_ = fmt.Sprintf("%v", tle) // TLE must be printable
}
