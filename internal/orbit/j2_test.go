package orbit

import (
	"math"
	"testing"
	"time"
)

func TestSSOInclinationKnownValues(t *testing.T) {
	// Textbook sun-synchronous inclinations (e.g. Boain 2004).
	cases := []struct {
		altKm, wantDeg float64
	}{
		{500, 97.4},
		{700, 98.19},
		{800, 98.6},
	}
	for _, c := range cases {
		got := SunSynchronousInclination(c.altKm) * 180 / math.Pi
		if math.Abs(got-c.wantDeg) > 0.15 {
			t.Errorf("SSO inclination at %v km = %v°, want ≈%v", c.altKm, got, c.wantDeg)
		}
	}
}

func TestSSOImpossibleAtHighAltitude(t *testing.T) {
	// At ~6000 km and above, no inclination can achieve the required rate.
	if got := SunSynchronousInclination(15000); !math.IsNaN(got) {
		t.Errorf("SSO at 15000 km should be impossible, got %v rad", got)
	}
	if _, ok := SunSynchronous(15000, 0, 0, testEpoch); ok {
		t.Error("SunSynchronous should report failure at 15000 km")
	}
}

func TestSSORaanPrecessionRate(t *testing.T) {
	el, ok := SunSynchronous(700, 0, 0, testEpoch)
	if !ok {
		t.Fatal("no SSO at 700 km")
	}
	rates := el.J2SecularRates()
	// Sun-synchronous nodal rate: +360°/tropical year ≈ 1.991e-7 rad/s.
	want := 2 * math.Pi / (365.2421897 * 86400)
	if math.Abs(rates.RAANRadS-want)/want > 1e-3 {
		t.Errorf("SSO RAAN rate = %v rad/s, want %v", rates.RAANRadS, want)
	}
}

func TestJ2RegressionSigns(t *testing.T) {
	prograde := CircularLEO(550, 53*math.Pi/180, 0, 0, testEpoch)
	if r := prograde.J2SecularRates(); r.RAANRadS >= 0 {
		t.Errorf("prograde orbit should regress westward, got %v", r.RAANRadS)
	}
	retrograde := CircularLEO(550, 120*math.Pi/180, 0, 0, testEpoch)
	if r := retrograde.J2SecularRates(); r.RAANRadS <= 0 {
		t.Errorf("retrograde orbit should precess eastward, got %v", r.RAANRadS)
	}
	polar := CircularLEO(550, math.Pi/2, 0, 0, testEpoch)
	if r := polar.J2SecularRates(); math.Abs(r.RAANRadS) > 1e-12 {
		t.Errorf("polar orbit should have zero nodal rate, got %v", r.RAANRadS)
	}
}

func TestJ2ISSNodalRate(t *testing.T) {
	// ISS-like orbit (420 km, 51.6°): nodal regression ≈ -5.0°/day.
	el := CircularLEO(420, 51.6*math.Pi/180, 0, 0, testEpoch)
	ratesDegDay := el.J2SecularRates().RAANRadS * 180 / math.Pi * 86400
	if math.Abs(ratesDegDay-(-5.0)) > 0.2 {
		t.Errorf("ISS nodal rate = %v°/day, want ≈-5.0", ratesDegDay)
	}
}

func TestCriticalInclinationFreezesPerigee(t *testing.T) {
	// At i = 63.43°, dω/dt = 0 (Molniya's trick).
	crit := math.Acos(math.Sqrt(1.0 / 5.0))
	el := Elements{Epoch: testEpoch, SemiMajorKm: 26560, Eccentricity: 0.72,
		InclinationRad: crit}
	r := el.J2SecularRates()
	if math.Abs(r.ArgPerigeeRadS) > 1e-12 {
		t.Errorf("critical inclination apsidal rate = %v, want 0", r.ArgPerigeeRadS)
	}
}

func TestPropagateJ2WrapsAngles(t *testing.T) {
	el := CircularLEO(550, 53*math.Pi/180, 6.2, 6.2, testEpoch)
	out := el.PropagateJ2(testEpoch.Add(30 * 24 * time.Hour))
	for name, v := range map[string]float64{
		"raan": out.RAANRad, "argp": out.ArgPerigeeRad, "ma": out.MeanAnomalyRad,
	} {
		if v < 0 || v >= 2*math.Pi {
			t.Errorf("%s = %v not wrapped to [0, 2π)", name, v)
		}
	}
	if !out.Epoch.Equal(testEpoch.Add(30 * 24 * time.Hour)) {
		t.Error("PropagateJ2 should move the epoch")
	}
}

func TestStateAtJ2ContinuousWithStateAt(t *testing.T) {
	// At the epoch itself, J2 and two-body must agree exactly.
	el := CircularLEO(700, 1.2, 0.4, 0.9, testEpoch)
	d := el.StateAt(testEpoch).Position.DistanceTo(el.StateAtJ2(testEpoch).Position)
	if d > 1e-9 {
		t.Errorf("J2 vs two-body at epoch differ by %v km", d)
	}
}

func TestJ2AltitudePreserved(t *testing.T) {
	// Secular J2 does not change a or e, so altitude stays constant for a
	// circular orbit.
	el := CircularLEO(550, 1.0, 0, 0, testEpoch)
	for _, days := range []int{1, 10, 100} {
		s := el.StateAtJ2(testEpoch.AddDate(0, 0, days))
		if alt := s.AltitudeKm(); math.Abs(alt-550) > 0.5 {
			t.Errorf("day %d: altitude %v km, want 550", days, alt)
		}
	}
}
