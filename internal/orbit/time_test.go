package orbit

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/vecmath"
)

func TestJulianDateJ2000(t *testing.T) {
	if got := JulianDate(J2000); got != 2451545.0 {
		t.Errorf("JD(J2000) = %v, want 2451545.0", got)
	}
}

func TestJulianDateKnownValues(t *testing.T) {
	cases := []struct {
		t    time.Time
		want float64
	}{
		// Sputnik launch: 1957-10-04 19:26:24 UTC → JD 2436116.31
		{time.Date(1957, 10, 4, 19, 26, 24, 0, time.UTC), 2436116.31},
		// 2023-10-30 00:00 UTC (during MICRO'23) → JD 2460247.5
		{time.Date(2023, 10, 30, 0, 0, 0, 0, time.UTC), 2460247.5},
	}
	for _, c := range cases {
		if got := JulianDate(c.t); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("JD(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestJulianDateMonotonic(t *testing.T) {
	t0 := time.Date(2026, 2, 27, 23, 0, 0, 0, time.UTC)
	prev := JulianDate(t0)
	for i := 1; i < 72; i++ {
		cur := JulianDate(t0.Add(time.Duration(i) * time.Hour))
		if cur <= prev {
			t.Fatalf("JD not monotonic at +%dh: %v <= %v", i, cur, prev)
		}
		if math.Abs((cur-prev)-1.0/24) > 1e-9 {
			t.Fatalf("JD step at +%dh = %v days, want 1/24", i, cur-prev)
		}
		prev = cur
	}
}

func TestGMSTJ2000(t *testing.T) {
	// GMST at J2000 epoch is 280.46062°.
	want := 280.46062 * math.Pi / 180
	if got := GMST(J2000); math.Abs(got-want) > 1e-4 {
		t.Errorf("GMST(J2000) = %v rad, want %v", got, want)
	}
}

func TestGMSTAdvancesSidereally(t *testing.T) {
	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	g0 := GMST(t0)
	// After one sidereal day (86164.0905 s) GMST returns to the same value.
	g1 := GMST(t0.Add(time.Duration(86164.0905 * float64(time.Second))))
	if d := math.Abs(vecmath.WrapPi(g1 - g0)); d > 1e-5 {
		t.Errorf("GMST after sidereal day differs by %v rad", d)
	}
	// After one solar day it advances by ~0.9856° ≈ 0.0172 rad.
	g24 := GMST(t0.Add(24 * time.Hour))
	adv := vecmath.WrapTwoPi(g24 - g0)
	if math.Abs(adv-0.0172) > 1e-3 {
		t.Errorf("GMST solar-day advance = %v rad, want ≈0.0172", adv)
	}
}

func TestECIECEFRoundTrip(t *testing.T) {
	tm := time.Date(2026, 3, 14, 15, 9, 26, 0, time.UTC)
	p := vecmath.Vec3{X: 7000, Y: -1234, Z: 4321}
	back := ECEFToECI(ECIToECEF(p, tm), tm)
	if d := p.DistanceTo(back); d > 1e-9 {
		t.Errorf("ECI→ECEF→ECI differs by %v km", d)
	}
}

func TestGeodeticRoundTrip(t *testing.T) {
	cases := []Geodetic{
		{LatRad: 0, LonRad: 0, AltKm: 0},
		{LatRad: 40.1 * math.Pi / 180, LonRad: -88.2 * math.Pi / 180, AltKm: 0.2}, // Urbana, IL
		{LatRad: -77.8 * math.Pi / 180, LonRad: 166.7 * math.Pi / 180, AltKm: 0},  // McMurdo
		{LatRad: 89 * math.Pi / 180, LonRad: 10 * math.Pi / 180, AltKm: 500},
		{LatRad: -89 * math.Pi / 180, LonRad: -170 * math.Pi / 180, AltKm: 35786},
	}
	for i, g := range cases {
		back := ECEFToGeodetic(g.ECEF())
		if math.Abs(back.LatRad-g.LatRad) > 1e-9 ||
			math.Abs(vecmath.WrapPi(back.LonRad-g.LonRad)) > 1e-9 ||
			math.Abs(back.AltKm-g.AltKm) > 1e-6 {
			t.Errorf("case %d: round trip %+v → %+v", i, g, back)
		}
	}
}

func TestECEFEquatorialRadius(t *testing.T) {
	p := Geodetic{LatRad: 0, LonRad: 0, AltKm: 0}.ECEF()
	if math.Abs(p.X-EarthRadiusKm) > 1e-6 || p.Y != 0 || p.Z != 0 {
		t.Errorf("equatorial point = %v, want (%v, 0, 0)", p, EarthRadiusKm)
	}
}

func TestECEFPolarRadius(t *testing.T) {
	p := Geodetic{LatRad: math.Pi / 2, LonRad: 0, AltKm: 0}.ECEF()
	// Polar radius = a(1 - f) ≈ 6356.75 km.
	wantZ := EarthRadiusKm * (1 - EarthFlattening)
	if math.Abs(p.Z-wantZ) > 0.01 {
		t.Errorf("polar Z = %v, want %v", p.Z, wantZ)
	}
	if math.Hypot(p.X, p.Y) > 1e-6 {
		t.Errorf("polar point off axis: %v", p)
	}
}

func TestLineOfSight(t *testing.T) {
	r := EarthRadiusKm
	cases := []struct {
		name  string
		a, b  vecmath.Vec3
		graze float64
		want  bool
	}{
		{"opposite sides blocked", vecmath.Vec3{X: r + 550}, vecmath.Vec3{X: -(r + 550)}, 0, false},
		{"same side visible", vecmath.Vec3{X: r + 550}, vecmath.Vec3{X: r + 600, Y: 100}, 0, true},
		// Two satellites 30° apart at 550 km: chord closest approach is
		// (r+550)·cos15° ≈ 6692 km > Earth radius, so visible.
		{"adjacent in orbit visible", vecmath.Vec3{X: r + 550},
			vecmath.Vec3{X: (r + 550) * 0.8660, Y: (r + 550) * 0.5}, 0, true},
		// The same two satellites 90° apart dip the chord to ~4899 km: blocked.
		{"quarter-orbit apart blocked", vecmath.Vec3{X: r + 550}, vecmath.Vec3{Y: r + 550}, 0, false},
		{"grazing margin blocks", vecmath.Vec3{X: r + 50, Y: -4000}, vecmath.Vec3{X: r + 50, Y: 4000}, 100, false},
		{"GEO sees near LEO", vecmath.Vec3{X: r + 35786}, vecmath.Vec3{Y: r + 550}, 100, true},
		{"GEO blocked to far LEO", vecmath.Vec3{X: r + 35786}, vecmath.Vec3{X: -(r + 550)}, 100, false},
		{"degenerate same point", vecmath.Vec3{X: r + 550}, vecmath.Vec3{X: r + 550}, 0, true},
	}
	for _, c := range cases {
		if got := LineOfSight(c.a, c.b, c.graze); got != c.want {
			t.Errorf("%s: LineOfSight = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestElevationAngle(t *testing.T) {
	obs := vecmath.Vec3{X: EarthRadiusKm}
	// Satellite directly overhead: 90°.
	if got := ElevationAngle(obs, vecmath.Vec3{X: EarthRadiusKm + 550}); math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("zenith elevation = %v, want π/2", got)
	}
	// Satellite on the horizon plane: ≈0°.
	if got := ElevationAngle(obs, vecmath.Vec3{X: EarthRadiusKm, Y: 1000}); math.Abs(got) > 1e-9 {
		t.Errorf("horizon elevation = %v, want 0", got)
	}
	// Satellite below: negative.
	if got := ElevationAngle(obs, vecmath.Vec3{X: EarthRadiusKm / 2, Y: 3000}); got >= 0 {
		t.Errorf("below-horizon elevation = %v, want < 0", got)
	}
}
