package orbit

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseTLEThreeLine(t *testing.T) {
	l1 := checksummed("1 25544U 98067A   26182.50000000  .00016717  00000-0  10270-3 0  9000")
	l2 := checksummed("2 25544  51.6400 208.9163 0006703  69.9862  25.2906 15.49560000000000")
	tle, err := ParseTLE("ISS (ZARYA)\n" + l1 + "\n" + l2)
	if err != nil {
		t.Fatal(err)
	}
	if tle.Name != "ISS (ZARYA)" {
		t.Errorf("name = %q", tle.Name)
	}
	if tle.NoradID != "25544" {
		t.Errorf("norad = %q", tle.NoradID)
	}
	if got := tle.Inclination * 180 / math.Pi; math.Abs(got-51.64) > 1e-9 {
		t.Errorf("inclination = %v", got)
	}
	// Epoch day 182.5 of 2026 → July 1, 12:00 UTC.
	want := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	if d := tle.Epoch.Sub(want); d < -time.Second || d > time.Second {
		t.Errorf("epoch = %v, want %v", tle.Epoch, want)
	}
	// Mean motion 15.4956 rev/day → rad/min.
	wantMM := 15.4956 * 2 * math.Pi / 1440
	if math.Abs(tle.MeanMotion-wantMM) > 1e-12 {
		t.Errorf("mean motion = %v, want %v", tle.MeanMotion, wantMM)
	}
}

func TestParseTLERejectsBadChecksum(t *testing.T) {
	l1 := checksummed("1 25544U 98067A   26182.50000000  .00016717  00000-0  10270-3 0  9000")
	l2 := checksummed("2 25544  51.6400 208.9163 0006703  69.9862  25.2906 15.49560000000000")
	// Corrupt line 2's checksum digit.
	bad := l2[:68] + string(rune('0'+(int(l2[68]-'0')+1)%10))
	if _, err := ParseTLE(l1 + "\n" + bad); err == nil {
		t.Error("corrupted checksum accepted")
	}
}

func TestParseTLERejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"one line only",
		"1 short\n2 short",
		strings.Repeat("x", 69) + "\n" + strings.Repeat("y", 69),
	}
	for _, c := range cases {
		if _, err := ParseTLE(c); err == nil {
			t.Errorf("garbage accepted: %q", c)
		}
	}
}

func TestParseTLESwappedLineNumbers(t *testing.T) {
	l1 := checksummed("1 25544U 98067A   26182.50000000  .00016717  00000-0  10270-3 0  9000")
	l2 := checksummed("2 25544  51.6400 208.9163 0006703  69.9862  25.2906 15.49560000000000")
	if _, err := ParseTLE(l2 + "\n" + l1); err == nil {
		t.Error("swapped lines accepted")
	}
}

func TestParseTLEExpFormats(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 66816-4", 0.66816e-4},
		{"-66816-4", -0.66816e-4},
		{" 00000-0", 0},
		{" 00000+0", 0},
		{" 12345+1", 1.2345},
	}
	for _, c := range cases {
		got, err := parseTLEExp(c.in)
		if err != nil {
			t.Errorf("parseTLEExp(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("parseTLEExp(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTLEEpochCentury(t *testing.T) {
	// Year 57 → 1957 (Sputnik era); year 56 → 2056.
	got, err := parseTLEEpoch("57001.00000000")
	if err != nil || got.Year() != 1957 {
		t.Errorf("yy=57 → %v (err %v), want 1957", got, err)
	}
	got, err = parseTLEEpoch("56001.00000000")
	if err != nil || got.Year() != 2056 {
		t.Errorf("yy=56 → %v (err %v), want 2056", got, err)
	}
}

func TestTLEElementsConversion(t *testing.T) {
	tle := mustTLE(t, str3TLE)
	el := tle.Elements()
	if err := el.Validate(); err != nil {
		t.Fatalf("converted elements invalid: %v", err)
	}
	// 16.058 rev/day → period ≈ 89.7 min → a ≈ 6643 km.
	if math.Abs(el.SemiMajorKm-6643) > 10 {
		t.Errorf("a = %v km, want ≈6643", el.SemiMajorKm)
	}
	if el.Eccentricity != tle.Eccentricity {
		t.Error("eccentricity should carry over")
	}
	// Two-body propagation from converted elements should stay within a
	// few tens of km of SGP4 over one revolution (mean vs osculating).
	prop, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := prop.PropagateMinutes(10)
	if err != nil {
		t.Fatal(err)
	}
	kp := el.StateAtJ2(tle.Epoch.Add(10 * time.Minute))
	if d := sg.Position.DistanceTo(kp.Position); d > 100 {
		t.Errorf("SGP4 vs converted elements differ by %v km after 10 min", d)
	}
}
