package orbit

import (
	"math"
	"testing"
	"time"
)

func TestRepeatValidate(t *testing.T) {
	if err := (RepeatGroundTrack{Revolutions: 15, Days: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RepeatGroundTrack{
		{Revolutions: 0, Days: 1},
		{Revolutions: 15, Days: 0},
		{Revolutions: 5, Days: 1},  // too high
		{Revolutions: 40, Days: 1}, // too low an orbit
	}
	for _, r := range bad {
		if r.Validate() == nil {
			t.Errorf("%+v accepted", r)
		}
	}
}

func TestSolveAltitudeKnownResonances(t *testing.T) {
	// Classic design points (sun-synchronous inclination ≈ 97.8°):
	// 15 revs/day sits near 560 km; 14 revs/day near 880 km.
	inc := 97.8 * math.Pi / 180
	cases := []struct {
		j, k   int
		wantKm float64
		tolKm  float64
	}{
		{15, 1, 560, 30},
		{14, 1, 890, 40},
		{29, 2, 720, 40}, // 14.5 rev/day
		{44, 3, 665, 40}, // 14.67 rev/day
	}
	for _, c := range cases {
		alt, err := (RepeatGroundTrack{Revolutions: c.j, Days: c.k}).SolveAltitude(inc)
		if err != nil {
			t.Fatalf("%d/%d: %v", c.j, c.k, err)
		}
		if math.Abs(alt-c.wantKm) > c.tolKm {
			t.Errorf("%d/%d: altitude %v km, want ≈%v", c.j, c.k, alt, c.wantKm)
		}
	}
}

func TestSolveAltitudeRepeatVerifiedByPropagation(t *testing.T) {
	// The definitive check: propagate a solved 15/1 orbit for exactly 15
	// revolutions of ground track and confirm the track closes on itself.
	inc := 97.8 * math.Pi / 180
	rgt := RepeatGroundTrack{Revolutions: 15, Days: 1}
	alt, err := rgt.SolveAltitude(inc)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	el := CircularLEO(alt, inc, 0, 0, epoch)

	start := SubPoint(el.StateAtJ2(epoch).Position, epoch)
	// One repeat cycle = 15 nodal periods; find it from the J2 rates.
	rates := el.J2SecularRates()
	orbital := rates.MeanAnomalyRadS + rates.ArgPerigeeRadS
	cycle := time.Duration(15 * 2 * math.Pi / orbital * float64(time.Second))
	endT := epoch.Add(cycle)
	end := SubPoint(el.StateAtJ2(endT).Position, endT)

	dLon := math.Abs(end.LonDeg() - start.LonDeg())
	if dLon > 180 {
		dLon = 360 - dLon
	}
	if dLon > 0.5 {
		t.Errorf("track shifted %v° after one repeat cycle, want ≈0", dLon)
	}
	if math.Abs(end.LatDeg()-start.LatDeg()) > 0.5 {
		t.Errorf("latitude drifted: %v → %v", start.LatDeg(), end.LatDeg())
	}
}

func TestGroundTrackShift(t *testing.T) {
	// At ~15 revs/day the equator shifts ≈ 2670 km per revolution.
	shift := GroundTrackShiftKm(560, 97.8*math.Pi/180)
	if shift < 2400 || shift > 2900 {
		t.Errorf("per-rev equatorial shift = %v km, want ≈2670", shift)
	}
	// Higher orbits shift more (longer period).
	if GroundTrackShiftKm(900, 97.8*math.Pi/180) <= shift {
		t.Error("higher orbit should shift further per revolution")
	}
}

func TestSolveAltitudeImpossible(t *testing.T) {
	// 16.9 revs/day would need a sub-200 km orbit at high inclination —
	// depending on rounding it either solves very low or fails; either
	// way 11 revs/day (≈2000+ km) must stay in band or error cleanly.
	if alt, err := (RepeatGroundTrack{Revolutions: 11, Days: 1}).SolveAltitude(1.0); err == nil {
		if alt < 1500 || alt > 2500 {
			t.Errorf("11/1 solved to %v km — outside the plausible band", alt)
		}
	}
}
