package orbit

import (
	"math"
	"testing"
)

func TestAtmosphereDensityShape(t *testing.T) {
	// Density falls monotonically with altitude over the LEO range.
	prev := math.Inf(1)
	for alt := 100.0; alt <= 1200; alt += 25 {
		rho := AtmosphereDensity(alt)
		if rho <= 0 || rho >= prev {
			t.Fatalf("density at %v km = %v (prev %v): not positive-decreasing", alt, rho, prev)
		}
		prev = rho
	}
	// Sanity anchors: ~4e-12 at 400 km, ~7e-13 at 500 km (static model).
	if rho := AtmosphereDensity(400); rho < 1e-12 || rho > 1e-11 {
		t.Errorf("density(400 km) = %v, want ≈3.7e-12", rho)
	}
	if rho := AtmosphereDensity(500); rho < 1e-13 || rho > 3e-12 {
		t.Errorf("density(500 km) = %v, want ≈7e-13", rho)
	}
}

// sudcBody is a 2000 kg SµDC with large solar arrays.
var sudcBody = DragBody{MassKg: 2000, AreaM2: 40}

// cubesatBody is a 4 kg 3U cubesat.
var cubesatBody = DragBody{MassKg: 4, AreaM2: 0.03}

func TestDragBodyValidate(t *testing.T) {
	if err := sudcBody.Validate(); err != nil {
		t.Fatal(err)
	}
	if (DragBody{MassKg: 0, AreaM2: 1}).Validate() == nil {
		t.Error("zero mass accepted")
	}
	if (DragBody{MassKg: 1, AreaM2: -1}).Validate() == nil {
		t.Error("negative area accepted")
	}
	if (DragBody{MassKg: 1, AreaM2: 1, Cd: -2}).Validate() == nil {
		t.Error("negative Cd accepted")
	}
	// Default Cd is 2.2.
	if bc := (DragBody{MassKg: 1, AreaM2: 1}).BallisticCoefficient(); math.Abs(bc-2.2) > 1e-12 {
		t.Errorf("default ballistic coefficient = %v, want 2.2", bc)
	}
}

func TestDecayRateOrdering(t *testing.T) {
	// Lower orbits decay faster; heavier/denser bodies decay slower.
	if sudcBody.DecayRateKmPerYear(400) <= sudcBody.DecayRateKmPerYear(550) {
		t.Error("400 km should decay faster than 550 km")
	}
	dense := DragBody{MassKg: 2000, AreaM2: 4}
	if dense.DecayRateKmPerYear(550) >= sudcBody.DecayRateKmPerYear(550) {
		t.Error("lower area-to-mass should decay slower")
	}
}

func TestLifetimeRanges(t *testing.T) {
	// A 3U cubesat at 400 km: months to a few years.
	if y := cubesatBody.LifetimeYears(400, 0); y < 0.1 || y > 6 {
		t.Errorf("cubesat lifetime at 400 km = %v yr, want O(1)", y)
	}
	// The same cubesat at 550 km: several years to a couple decades.
	y550 := cubesatBody.LifetimeYears(550, 0)
	if y550 < 2 || y550 > 60 {
		t.Errorf("cubesat lifetime at 550 km = %v yr, want O(10)", y550)
	}
	// Higher orbit must outlive the lower one.
	if y550 <= cubesatBody.LifetimeYears(400, 0) {
		t.Error("550 km must outlive 400 km")
	}
	// At 900 km lifetime hits the cap — "no boosting needed" territory.
	if y := cubesatBody.LifetimeYears(900, 200); y < 200 {
		t.Errorf("900 km lifetime = %v yr, want capped 200", y)
	}
}

func TestBoostBudget(t *testing.T) {
	// SµDC at 550 km: a few m/s per year of drag make-up (§9: LEO SµDCs
	// need boosting; GEO needs almost none).
	dv := sudcBody.BoostDeltaVPerYear(550)
	if dv < 0.5 || dv > 30 {
		t.Errorf("550 km boost budget = %v m/s/yr, want single digits", dv)
	}
	// At 400 km (ISS altitude) it is an order of magnitude worse.
	if r := sudcBody.BoostDeltaVPerYear(400) / dv; r < 3 {
		t.Errorf("400/550 km boost ratio = %v, want ≫ 1", r)
	}
	// At GEO altitude the static atmosphere is essentially gone.
	if g := sudcBody.BoostDeltaVPerYear(GeostationaryAltitudeKm); g > 1e-6 {
		t.Errorf("GEO drag make-up = %v m/s/yr, want ≈0", g)
	}
}

func TestHohmannKnownValues(t *testing.T) {
	// LEO (550 km) → GEO: ≈3.9 km/s total.
	dv := HohmannDeltaV(550, GeostationaryAltitudeKm)
	if math.Abs(dv-3900) > 150 {
		t.Errorf("LEO→GEO Hohmann = %v m/s, want ≈3900", dv)
	}
	// Symmetric and zero on the diagonal.
	if HohmannDeltaV(550, 550) != 0 {
		t.Error("same-orbit transfer should be free")
	}
	up := HohmannDeltaV(550, 800)
	down := HohmannDeltaV(800, 550)
	if math.Abs(up-down) > 1e-9 {
		t.Errorf("Hohmann up %v vs down %v should match", up, down)
	}
}

func TestDisposalDeltaV(t *testing.T) {
	// Deorbiting from 550 km to a 50 km perigee costs ≈140 m/s.
	dv := DisposalDeltaV(550, 50)
	if dv < 100 || dv > 200 {
		t.Errorf("disposal burn = %v m/s, want ≈140", dv)
	}
	// Raising the perigee is not a disposal: zero.
	if DisposalDeltaV(550, 600) != 0 {
		t.Error("perigee above orbit should cost nothing")
	}
	// Disposal from lower orbits is cheaper.
	if DisposalDeltaV(400, 50) >= dv {
		t.Error("lower orbit should deorbit cheaper")
	}
}

func TestGraveyardDeltaV(t *testing.T) {
	// GEO graveyard re-orbit (+300 km) is famously cheap: ~11 m/s.
	dv := GraveyardDeltaV()
	if dv < 5 || dv > 20 {
		t.Errorf("graveyard burn = %v m/s, want ≈11", dv)
	}
	// Versus deorbiting GEO entirely (~1500 m/s) — why graveyards exist.
	deorbit := DisposalDeltaV(GeostationaryAltitudeKm, 50)
	if deorbit < 50*dv {
		t.Errorf("GEO deorbit %v m/s should dwarf graveyard %v m/s", deorbit, dv)
	}
}

func TestLifetimeMonotoneInBallisticCoefficient(t *testing.T) {
	light := DragBody{MassKg: 10, AreaM2: 1}
	heavy := DragBody{MassKg: 1000, AreaM2: 1}
	if light.LifetimeYears(500, 0) >= heavy.LifetimeYears(500, 0) {
		t.Error("higher area-to-mass must decay sooner")
	}
}
