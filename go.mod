module spacedc

go 1.22
